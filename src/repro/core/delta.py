"""Network deltas: incremental evolution of a matching network.

Production networks are never rebuilt from scratch — schemas arrive and
leave while reconciliation sessions are mid-flight.  A
:class:`NetworkDelta` describes one batch of such changes (schemas and
candidate correspondences added and removed); :func:`apply_network_delta`
produces the successor :class:`~repro.core.network.MatchingNetwork`
*incrementally*: the constraint engine keeps every compiled violation
whose members all survive and re-discovers only the violations that a
change could have created, instead of re-enumerating the whole
violation hypergraph.

**The locality contract.**  Every edge added by a delta must touch an
*added* schema.  Surviving candidates therefore never gain a new way to
violate a constraint among themselves:

* one-to-one violations are graph-independent pairs within one schema
  pair — new ones must involve an added candidate;
* cycle violations need a graph cycle carrying all their members; a new
  cycle uses a new edge, a new edge touches an added schema, and only
  added candidates can span an added schema;
* declaration-style constraints (``referenced_correspondences()`` not
  ``None``) fire only when every named member is available, so a new
  firing must involve an added candidate too.

Hence *new* violations all intersect the added candidate set, and they
are found by re-running each structural constraint over a small
BFS-bounded scope around the delta (radius 0 for one-to-one, the cycle
bound for cycles).  Constraints outside this taxonomy fall back to a
full recompile — correct, just not incremental.

The per-index mask tables are renumbered (removals shift every bit), so
the *global* engine saves re-discovery, not re-indexing; the shard layer
(:func:`repro.shard.shard_plan_delta`) is where untouched components
keep their live engines, stores and RNG streams verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping, Sequence

from .constraints import (
    ConstraintEngine,
    CycleConstraint,
    OneToOneConstraint,
    Violation,
)
from .correspondence import CandidateSet, Correspondence
from .graphs import InteractionGraph
from .network import MatchingNetwork
from .schema import Schema, validate_disjoint

__all__ = ["DeltaResult", "NetworkDelta", "apply_network_delta"]


@dataclass(frozen=True)
class NetworkDelta:
    """One batch of network evolution: schemas and candidates in/out.

    Attributes
    ----------
    add_schemas:
        New :class:`Schema` objects; names must be fresh (a name removed
        in the same delta may be re-used — the old candidates touching
        it are gone either way).
    remove_schemas:
        Names of schemas to drop.  Every candidate touching a removed
        schema is removed implicitly.
    add_edges:
        New interaction-graph edges.  Each must touch an added schema
        (see the locality contract in the module docstring).
    add_candidates:
        ``(correspondence, confidence)`` pairs to append to the
        candidate set; endpoints must exist in the successor schemas and
        span an edge of the successor graph.
    remove_candidates:
        Existing candidates to drop explicitly.
    rescore:
        In-place matcher-confidence updates for *existing* candidates —
        ``{correspondence: score}`` (or ``(correspondence, score)``
        pairs).  Confidence is auxiliary matcher output: it never enters
        the constraint engine or the instance space, so a rescore-only
        delta patches the candidate set without recompiling the engine
        or rebuilding any shard (see :func:`apply_network_delta`'s fast
        path).  Rescoring a candidate the same delta removes (or one
        that is not a candidate at all) is an error.
    """

    add_schemas: tuple[Schema, ...] = ()
    remove_schemas: tuple[str, ...] = ()
    add_edges: tuple[tuple[str, str], ...] = ()
    add_candidates: tuple[tuple[Correspondence, float], ...] = ()
    remove_candidates: tuple[Correspondence, ...] = ()
    rescore: tuple[tuple[Correspondence, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_schemas", tuple(self.add_schemas))
        object.__setattr__(self, "remove_schemas", tuple(self.remove_schemas))
        object.__setattr__(
            self,
            "add_edges",
            tuple((str(a), str(b)) for a, b in self.add_edges),
        )
        object.__setattr__(
            self,
            "add_candidates",
            tuple(
                (corr, float(confidence))
                for corr, confidence in self.add_candidates
            ),
        )
        object.__setattr__(
            self, "remove_candidates", tuple(self.remove_candidates)
        )
        rescore = self.rescore
        if isinstance(rescore, Mapping):
            rescore = rescore.items()
        object.__setattr__(
            self,
            "rescore",
            tuple((corr, float(score)) for corr, score in rescore),
        )

    def is_structural(self) -> bool:
        """Whether the delta changes the candidate universe or the graph.

        Rescores are non-structural: they touch confidences only, so a
        delta that carries nothing else keeps the engine, the instance
        space, and every shard byte-identical.
        """
        return bool(
            self.add_schemas
            or self.remove_schemas
            or self.add_edges
            or self.add_candidates
            or self.remove_candidates
        )

    def is_empty(self) -> bool:
        """Whether applying this delta is a complete no-op."""
        return not (self.is_structural() or self.rescore)


@dataclass(frozen=True)
class DeltaResult:
    """Everything downstream layers need to consume a delta incrementally.

    Attributes
    ----------
    delta:
        The applied :class:`NetworkDelta`.
    network:
        The successor network (incrementally compiled engine).
    index_map:
        Old engine index → new engine index for every *surviving*
        candidate.  Monotone: survivors keep their relative order and
        additions are appended, which is what lets the shard layer wrap
        carried shard stores in remapped index tuples without touching
        their contents.
    removed_indices:
        Old-space indices of removed candidates, ascending.
    removed_correspondences:
        The removed candidates themselves (a candidate removed and
        re-added in one delta counts as removed — its feedback must be
        retracted, the re-added twin starts fresh).
    added_indices:
        New-space indices of added candidates, ascending.
    new_violation_masks:
        New-space masks of the violations that were *not* carried over
        from the old engine — the touched region the shard planner must
        recompute; every one of them intersects the added candidates.
    rescored_indices:
        New-space indices of the candidates whose confidence the delta
        patched in place, ascending.
    """

    delta: NetworkDelta
    network: MatchingNetwork
    index_map: Mapping[int, int]
    removed_indices: tuple[int, ...]
    removed_correspondences: frozenset[Correspondence] = field(repr=False)
    added_indices: tuple[int, ...] = ()
    new_violation_masks: tuple[int, ...] = field(default=(), repr=False)
    rescored_indices: tuple[int, ...] = ()

    @property
    def structural(self) -> bool:
        """Whether the successor's candidate universe or engine changed.

        False exactly for rescore-only deltas: the successor then shares
        the predecessor's engine, graph and schemas verbatim, and every
        downstream layer (estimators, shard stores) may keep its state
        untouched — only the network reference moves.
        """
        return self.delta.is_structural()

    @property
    def removed_mask(self) -> int:
        """Old-space bitmask of the removed candidates."""
        mask = 0
        for index in self.removed_indices:
            mask |= 1 << index
        return mask

    @property
    def added_mask(self) -> int:
        """New-space bitmask of the added candidates."""
        mask = 0
        for index in self.added_indices:
            mask |= 1 << index
        return mask


def _bfs_scope(
    graph: InteractionGraph, seeds: Iterable[str], radius: int
) -> set[str]:
    """Schemas within ``radius`` graph hops of any seed (seeds included)."""
    scope = set(seeds)
    frontier = set(scope)
    for _ in range(radius):
        grown: set[str] = set()
        for node in frontier:
            grown |= graph.neighbors(node)
        grown -= scope
        if not grown:
            break
        scope |= grown
        frontier = grown
    return scope


def _canonical_cycle(path: tuple[str, ...]) -> tuple[str, ...]:
    """The rotation/direction :meth:`InteractionGraph.cycles` would emit:
    smallest node first, then towards its smaller cycle neighbour."""
    k = len(path)
    pivot = path.index(min(path))
    forward = tuple(path[(pivot + j) % k] for j in range(k))
    backward = tuple(path[(pivot - j) % k] for j in range(k))
    return forward if forward[1] < forward[-1] else backward


def _cycles_through_edges(
    graph: InteractionGraph,
    anchor_edges: Iterable[tuple[str, str]],
    max_length: int,
) -> Iterator[tuple[str, ...]]:
    """Simple cycles (length 3..``max_length``) using ≥1 anchor edge, each
    once.

    Equivalent to filtering :meth:`InteractionGraph.cycles` to cycles
    containing an anchor edge, but enumerated as simple paths *between*
    each anchor edge's endpoints — the work is bounded by the handful of
    edges a delta's added candidates span, not the network's full (dense)
    cycle space.
    """
    if max_length < 3:
        return
    seen: set[tuple[str, ...]] = set()
    for start, goal in sorted(set(anchor_edges)):
        if start not in graph or not graph.has_edge(start, goal):
            continue
        # Paths start → … → goal of 3..max_length nodes; closing them over
        # the anchor edge (goal, start) is the cycle.
        stack: list[tuple[str, ...]] = [(start,)]
        while stack:
            path = stack.pop()
            head = path[-1]
            for neighbour in sorted(graph.neighbors(head)):
                if neighbour == goal:
                    if len(path) >= 2:
                        canonical = _canonical_cycle(path + (goal,))
                        if canonical not in seen:
                            seen.add(canonical)
                            yield canonical
                    continue
                if neighbour in path:
                    continue
                if len(path) < max_length - 1:
                    stack.append(path + (neighbour,))


def _cycle_violations_through(
    constraint: CycleConstraint,
    correspondences: Sequence[Correspondence],
    graph: InteractionGraph,
    added_corrs: Sequence[Correspondence],
) -> Iterator[Violation]:
    """``CycleConstraint`` discovery restricted to the delta's cycles.

    Every *new* violation contains an added candidate, and a cycle
    violation's members each span one edge of the underlying schema
    cycle — so the cycle passes through an added candidate's edge.
    Anchoring the enumeration on those few edges is exhaustive for the
    added-intersecting family without walking the dense survivor-only
    cycle space a BFS scope would drag in.
    """
    by_edge: dict[tuple[str, str], list[Correspondence]] = {}
    for corr in correspondences:
        by_edge.setdefault(corr.schema_pair, []).append(corr)
    anchor_edges = {corr.schema_pair for corr in added_corrs}
    seen: set[frozenset[Correspondence]] = set()
    for cycle in _cycles_through_edges(
        graph, anchor_edges, constraint.max_cycle_length
    ):
        for rotation in range(len(cycle)):
            rotated = cycle[rotation:] + cycle[:rotation]
            for violation in constraint._cycle_violations(rotated, by_edge):
                if violation.correspondences not in seen:
                    seen.add(violation.correspondences)
                    yield violation


def _incremental_engine(
    old_engine: ConstraintEngine,
    correspondences: Sequence[Correspondence],
    graph: InteractionGraph,
    removed_mask: int,
    added_corrs: Sequence[Correspondence],
    added_names: set[str],
) -> ConstraintEngine:
    """Recompile the engine keeping every violation among survivors.

    Carried violations are the old ones whose mask misses every removed
    bit (their members, graph edges and constraint semantics all
    survive).  New violations all intersect the added candidate set (the
    locality contract), so structural constraints are re-run only over a
    BFS-bounded scope around the delta and declaration-style constraints
    over the (cheap) explicit reference lists.
    """
    constraints = old_engine.constraints
    violations = []
    sources: list[list[int]] = []
    seen: dict[frozenset[Correspondence], int] = {}
    for violation, vmask, contributors in zip(
        old_engine.violations,
        old_engine.violation_masks,
        old_engine.violation_sources,
    ):
        if vmask & removed_mask:
            continue
        seen[violation.correspondences] = len(violations)
        violations.append(violation)
        sources.append(list(contributors))

    added_set = set(added_corrs)
    if added_set or added_names:
        seeds: set[str] = set(added_names)
        for corr in added_corrs:
            seeds.update(corr.schema_pair)
        scope_cache: dict[int, tuple[tuple, InteractionGraph]] = {}
        for position, constraint in enumerate(constraints):
            referenced = constraint.referenced_correspondences()
            if referenced is not None:
                fresh = constraint.minimal_violations(correspondences, graph)
            elif isinstance(constraint, CycleConstraint):
                # Anchored, not scoped: a BFS ball of radius max_cycle_length
                # around the delta covers most of a dense network, making
                # "scoped" rediscovery as expensive as a full recompile.
                # Every new violation lies on a cycle through an added
                # schema, so enumerate exactly those cycles instead.
                fresh = _cycle_violations_through(
                    constraint, correspondences, graph, added_corrs
                )
            else:
                radius = 0  # OneToOneConstraint: pairs within one schema pair
                cached = scope_cache.get(radius)
                if cached is None:
                    scope = _bfs_scope(graph, seeds, radius)
                    scope_corrs = tuple(
                        corr
                        for corr in correspondences
                        if corr.schema_pair[0] in scope
                        and corr.schema_pair[1] in scope
                    )
                    scope_graph = InteractionGraph(
                        nodes=sorted(scope),
                        edges=[
                            edge
                            for edge in graph.edges
                            if edge[0] in scope and edge[1] in scope
                        ],
                    )
                    cached = (scope_corrs, scope_graph)
                    scope_cache[radius] = cached
                scope_corrs, scope_graph = cached
                fresh = constraint.minimal_violations(scope_corrs, scope_graph)
            for violation in fresh:
                if not (violation.correspondences & added_set):
                    # Violations among survivors only: either already
                    # carried, or (scoped discovery over a sub-universe)
                    # a subset of the carried family — skip either way.
                    continue
                slot = seen.get(violation.correspondences)
                if slot is None:
                    seen[violation.correspondences] = len(violations)
                    violations.append(violation)
                    sources.append([position])
                elif position not in sources[slot]:
                    sources[slot].append(position)

    return ConstraintEngine.from_violations(
        constraints, correspondences, violations, sources
    )


def _validated_rescore(
    network: MatchingNetwork, delta: NetworkDelta
) -> dict[Correspondence, float]:
    """The delta's rescore entries as a map, checked against ``network``."""
    rescore_map: dict[Correspondence, float] = {}
    for corr, score in delta.rescore:
        if corr in rescore_map:
            raise ValueError(f"delta rescores {corr} twice")
        if corr not in network.candidates:
            raise ValueError(
                f"delta rescores {corr} which is not a candidate"
            )
        rescore_map[corr] = score
    return rescore_map


def _rescore_only_result(
    network: MatchingNetwork,
    delta: NetworkDelta,
    rescore_map: dict[Correspondence, float],
) -> DeltaResult:
    """The fast path: patch confidences, share everything else verbatim.

    Confidence never enters the constraint engine or the instance space
    (only matchers write it and confidence-ranked selection reads it), so
    the successor reuses the predecessor's schemas, graph, constraints
    and *engine objects* — no recompilation, an identity index map, and
    nothing for the shard layer to rebuild.
    """
    candidates = CandidateSet()
    confidence_of = network.candidates.confidence
    rescored_indices: list[int] = []
    for index, corr in enumerate(network.correspondences):
        score = rescore_map.get(corr)
        if score is None:
            candidates.add(corr, confidence_of(corr))
        else:
            candidates.add(corr, score)
            rescored_indices.append(index)
    successor = MatchingNetwork.__new__(MatchingNetwork)
    successor.schemas = network.schemas
    successor._schema_by_name = network._schema_by_name
    successor.candidates = candidates
    successor.graph = network.graph
    successor.constraints = network.constraints
    successor.engine = network.engine
    return DeltaResult(
        delta=delta,
        network=successor,
        index_map=MappingProxyType(
            {index: index for index in range(len(network.correspondences))}
        ),
        removed_indices=(),
        removed_correspondences=frozenset(),
        added_indices=(),
        new_violation_masks=(),
        rescored_indices=tuple(rescored_indices),
    )


def apply_network_delta(
    network: MatchingNetwork, delta: NetworkDelta
) -> DeltaResult:
    """Apply ``delta`` to ``network``, returning the successor + mappings.

    The input network is left untouched; the successor shares the
    surviving :class:`Schema`, :class:`Correspondence` and
    :class:`~repro.core.constraints.Violation` objects, so downstream
    layers can carry state keyed on them verbatim.  A rescore-only delta
    short-circuits to :func:`_rescore_only_result` — same engine object,
    identity index map.
    """
    rescore_map = _validated_rescore(network, delta)
    if not delta.is_structural():
        return _rescore_only_result(network, delta, rescore_map)
    # ------------------------------------------------------------------
    # Schemas
    # ------------------------------------------------------------------
    removed_names = set(delta.remove_schemas)
    if len(removed_names) != len(delta.remove_schemas):
        raise ValueError("delta removes the same schema twice")
    for name in delta.remove_schemas:
        if name not in network._schema_by_name:
            raise ValueError(f"delta removes unknown schema {name!r}")
    surviving_schemas = [
        schema for schema in network.schemas if schema.name not in removed_names
    ]
    schemas = tuple(surviving_schemas) + tuple(delta.add_schemas)
    validate_disjoint(schemas)
    added_names = {schema.name for schema in delta.add_schemas}
    by_name = {schema.name: schema for schema in schemas}

    # ------------------------------------------------------------------
    # Interaction graph (edges touching a removed schema drop with it)
    # ------------------------------------------------------------------
    surviving_edges = [
        edge
        for edge in network.graph.edges
        if edge[0] not in removed_names and edge[1] not in removed_names
    ]
    for left, right in delta.add_edges:
        if left not in by_name or right not in by_name:
            raise ValueError(
                f"delta edge ({left!r}, {right!r}) references an unknown schema"
            )
        if left not in added_names and right not in added_names:
            raise ValueError(
                f"delta edge ({left!r}, {right!r}) connects two pre-existing "
                "schemas; delta edges must touch an added schema (an edge "
                "among survivors could create violations among surviving "
                "candidates, defeating incremental recompilation — rebuild "
                "the network instead)"
            )
    graph = InteractionGraph(
        nodes=[schema.name for schema in schemas],
        edges=[*surviving_edges, *delta.add_edges],
    )

    # ------------------------------------------------------------------
    # Candidates: survivors keep insertion order, additions append
    # ------------------------------------------------------------------
    old_corrs = network.correspondences
    explicit = set(delta.remove_candidates)
    unknown = explicit.difference(old_corrs)
    if unknown:
        raise ValueError(
            f"delta removes {len(unknown)} correspondence(s) that are not "
            f"candidates (e.g. {next(iter(unknown))})"
        )
    removed: list[Correspondence] = []
    removed_indices: list[int] = []
    index_map: dict[int, int] = {}
    rescored_indices: list[int] = []
    candidates = CandidateSet()
    confidence_of = network.candidates.confidence
    for old_index, corr in enumerate(old_corrs):
        if corr in explicit or any(
            endpoint.schema in removed_names for endpoint in corr.attributes
        ):
            if corr in rescore_map:
                raise ValueError(
                    f"delta rescores {corr} which it also removes"
                )
            removed.append(corr)
            removed_indices.append(old_index)
        else:
            index_map[old_index] = len(candidates)
            score = rescore_map.get(corr)
            if score is not None:
                rescored_indices.append(len(candidates))
            candidates.add(
                corr, confidence_of(corr) if score is None else score
            )

    added_corrs: list[Correspondence] = []
    added_indices: list[int] = []
    for corr, confidence in delta.add_candidates:
        if corr in candidates:
            raise ValueError(f"delta adds {corr} which is already a candidate")
        for endpoint in corr.attributes:
            schema = by_name.get(endpoint.schema)
            if schema is None:
                raise ValueError(
                    f"added candidate {corr} references unknown schema "
                    f"{endpoint.schema!r}"
                )
            if endpoint not in schema:
                raise ValueError(
                    f"added candidate {corr} references unknown attribute "
                    f"{endpoint.qualified_name!r}"
                )
        left, right = corr.schema_pair
        if not graph.has_edge(left, right):
            raise ValueError(
                f"added candidate {corr} spans schemas {left!r}/{right!r} "
                "that are not connected in the successor interaction graph"
            )
        added_indices.append(len(candidates))
        candidates.add(corr, confidence)
        added_corrs.append(corr)

    # ------------------------------------------------------------------
    # Engine: incremental when the constraint family is understood
    # ------------------------------------------------------------------
    old_engine = network.engine
    removed_mask = 0
    for index in removed_indices:
        removed_mask |= old_engine.bits[index]
    incremental = all(
        isinstance(c, (OneToOneConstraint, CycleConstraint))
        or c.referenced_correspondences() is not None
        for c in network.constraints
    )
    new_corrs = candidates.correspondences
    if incremental:
        engine = _incremental_engine(
            old_engine, new_corrs, graph, removed_mask, added_corrs, added_names
        )
    else:
        engine = ConstraintEngine(
            network.constraints, new_corrs, graph, validate=False
        )

    successor = MatchingNetwork.__new__(MatchingNetwork)
    successor.schemas = schemas
    successor._schema_by_name = by_name
    successor.candidates = candidates
    successor.graph = graph
    successor.constraints = network.constraints
    successor.engine = engine

    carried_keys = {
        violation.correspondences
        for violation, vmask in zip(
            old_engine.violations, old_engine.violation_masks
        )
        if not (vmask & removed_mask)
    }
    new_violation_masks = tuple(
        vmask
        for violation, vmask in zip(engine.violations, engine.violation_masks)
        if violation.correspondences not in carried_keys
    )
    return DeltaResult(
        delta=delta,
        network=successor,
        index_map=MappingProxyType(index_map),
        removed_indices=tuple(removed_indices),
        removed_correspondences=frozenset(removed),
        added_indices=tuple(added_indices),
        new_violation_masks=new_violation_masks,
        rescored_indices=tuple(rescored_indices),
    )
