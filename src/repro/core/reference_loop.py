"""The pinned scalar reference of the reconciliation loop.

:class:`ReferenceReconciliationSession` re-implements Algorithm 1 exactly
the way the loop worked before it went array-native: every quantity is
derived from the mapping-level APIs (``probabilities()`` dicts, scalar
``binary_entropy`` sums, list comprehensions over correspondences) and the
sample store's numpy caches are torn down after every assertion so each
step re-derives them from the mask multiset — the non-incremental
behaviour the view-maintained store replaced.

It exists for the equivalence harness: the store, sampler and constraint
kernels are *shared* with the production loop, so a reference session and a
:class:`~repro.core.reconciliation.ReconciliationSession` driven with
identical seeds consume identical random streams and must produce
**bit-for-bit identical traces** — same uncertainties, same selections,
same feedback state at every step.  ``tests/test_loop_equivalence.py``
enforces exactly that, and the seeded golden tests pin the shared result.
It also doubles as the baseline of the reconciliation-session benchmark,
paying the scalar per-step costs the incremental loop eliminated.

The class supports the strategies the scenario harness drives (random,
information-gain, likelihood) with the historical dict-based selection
code, including the historical rng-consumption pattern, so seeded
selections match the vectorised strategies tie for tie.
"""

from __future__ import annotations

import random
from typing import Optional

from .correspondence import Correspondence
from .feedback import Oracle
from .probability import ProbabilisticNetwork, SampledEstimator
from .reconciliation import (
    ReconciliationStep,
    ReconciliationTrace,
    resolve_conflicting_approval,
)
from .uncertainty import information_gains, network_uncertainty


class ReferenceReconciliationSession:
    """Scalar, teardown-per-step Algorithm 1 — the equivalence baseline."""

    def __init__(
        self,
        pnet: ProbabilisticNetwork,
        oracle: Oracle,
        strategy: str = "random",
        rng: Optional[random.Random] = None,
        on_conflict: str = "raise",
    ):
        if strategy not in ("random", "information-gain", "likelihood"):
            raise ValueError(f"unknown reference strategy {strategy!r}")
        if on_conflict not in ("raise", "disapprove"):
            raise ValueError("on_conflict must be 'raise' or 'disapprove'")
        self.pnet = pnet
        self.oracle = oracle
        self.strategy = strategy
        self.rng = rng or random.Random()
        self.on_conflict = on_conflict
        self.conflicts_resolved = 0
        self.approvals_retracted = 0
        self.trace = ReconciliationTrace(initial_uncertainty=self.uncertainty())

    # ------------------------------------------------------------------
    # Scalar state inspection (historical implementations, verbatim)
    # ------------------------------------------------------------------
    def uncertainty(self) -> float:
        """H(C, P) as the scalar sum over the probability mapping."""
        return network_uncertainty(self.pnet.probabilities())

    def effort(self) -> float:
        """E via the materialised F⁺ ∪ F⁻ frozenset."""
        return len(self.pnet.feedback.asserted) / len(self.pnet.correspondences)

    def _uncertain(self) -> list[Correspondence]:
        return [
            corr
            for corr, p in self.pnet.probabilities().items()
            if 0.0 < p < 1.0
        ]

    def _unasserted(self) -> list[Correspondence]:
        feedback = self.pnet.feedback
        return [
            corr
            for corr in self.pnet.correspondences
            if not feedback.is_asserted(corr)
        ]

    def is_done(self) -> bool:
        return not self._uncertain()

    # ------------------------------------------------------------------
    # Historical dict-based selection
    # ------------------------------------------------------------------
    def _select(self) -> Optional[Correspondence]:
        if self.strategy == "random":
            unasserted = self._unasserted()
            if not unasserted:
                return None
            return unasserted[self.rng.randrange(len(unasserted))]
        uncertain = self._uncertain()
        if not uncertain:
            unasserted = self._unasserted()
            if not unasserted:
                return None
            return unasserted[self.rng.randrange(len(unasserted))]
        if self.strategy == "likelihood":
            probabilities = self.pnet.probabilities()
            best_p = max(probabilities[corr] for corr in uncertain)
            best = [corr for corr in uncertain if probabilities[corr] == best_p]
            return best[self.rng.randrange(len(best))]
        if not isinstance(self.pnet.estimator, SampledEstimator):
            raise TypeError("information-gain needs a SampledEstimator")
        gains = information_gains(
            (),
            self.pnet.correspondences,
            restrict_to=uncertain,
            matrix=self.pnet.estimator.membership_matrix(),
        )
        best_gain = max(gains.values())
        best = [corr for corr, gain in gains.items() if gain == best_gain]
        return best[self.rng.randrange(len(best))]

    # ------------------------------------------------------------------
    # Algorithm 1, scalar edition
    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        """Discard the store's derived caches, as the pre-incremental store
        did after every assertion (the next read re-derives everything)."""
        estimator = self.pnet.estimator
        if isinstance(estimator, SampledEstimator):
            estimator.store._invalidate()

    def step(self) -> Optional[ReconciliationStep]:
        from .instances import InconsistentFeedbackError

        corr = self._select()
        if corr is None:
            return None
        # The random baseline may pick an already-certain correspondence;
        # mirror RandomSelection's contract exactly (it selects among the
        # unasserted, certain or not).
        approved = self.oracle.assert_correspondence(corr)
        try:
            self.pnet.record_assertion(corr, approved)
        except InconsistentFeedbackError:
            if self.on_conflict == "raise":
                raise
            # The minority-side policy is a loop-layer *semantic*, shared
            # with the incremental session (like the pnet feedback step
            # itself) so the equivalence harness pins one behaviour.
            self.conflicts_resolved += 1
            approved, retracted = resolve_conflicting_approval(
                self.pnet,
                corr,
                {step.correspondence: step.index for step in self.trace.steps},
            )
            self.approvals_retracted += len(retracted)
        self._teardown()
        record = ReconciliationStep(
            index=len(self.trace.steps) + 1,
            correspondence=corr,
            approved=approved,
            uncertainty=self.uncertainty(),
            effort=self.effort(),
        )
        self.trace.steps.append(record)
        return record

    def run(
        self,
        budget: Optional[int] = None,
        uncertainty_goal: Optional[float] = None,
    ) -> ReconciliationTrace:
        """Historical goal loop: recompute H(C, P) on every iteration."""
        while True:
            if budget is not None and len(self.trace.steps) >= budget:
                break
            if (
                uncertainty_goal is not None
                and self.uncertainty() <= uncertainty_goal
            ):
                break
            if self.step() is None:
                break
        return self.trace
