"""Attribute correspondences and candidate correspondence sets.

A correspondence is an unordered pair of attributes from two *different*
schemas (Section II-B).  We canonicalise the endpoint order (by schema name)
so that ``(a, b)`` and ``(b, a)`` denote the same correspondence and hash
identically.  Matcher confidence values live in :class:`CandidateSet`, not on
the correspondence itself: the paper treats confidences as auxiliary matcher
output, while correspondence identity is purely structural.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .schema import Attribute


class Correspondence:
    """An undirected attribute correspondence between two schemas.

    Endpoints are canonicalised (smaller ``(schema, name)`` first) so that
    ``(a, b)`` and ``(b, a)`` denote the same value; equality, ordering and
    the (precomputed) hash follow that canonical form.  Correspondences are
    the keys of every hot set and dictionary in the sampler, so they are
    slotted immutable objects.
    """

    __slots__ = ("source", "target", "_hash")

    def __init__(self, source: Attribute, target: Attribute):
        if source.schema == target.schema:
            raise ValueError(
                "correspondence endpoints must come from different schemas: "
                f"{source} / {target}"
            )
        if (source.schema, source.name) > (target.schema, target.name):
            source, target = target, source
        self.source = source
        self.target = target
        self._hash = hash((source._hash, target._hash))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Correspondence):
            return NotImplemented
        return self.source == other.source and self.target == other.target

    def __hash__(self) -> int:
        return self._hash

    def _key(self) -> tuple[str, str, str, str]:
        return (
            self.source.schema,
            self.source.name,
            self.target.schema,
            self.target.name,
        )

    def __lt__(self, other: "Correspondence") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Correspondence") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Correspondence") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Correspondence") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:
        return f"Correspondence({self.source!r}, {self.target!r})"

    @property
    def schema_pair(self) -> tuple[str, str]:
        """The (sorted) pair of schema names the correspondence spans."""
        return (self.source.schema, self.target.schema)

    @property
    def attributes(self) -> tuple[Attribute, Attribute]:
        return (self.source, self.target)

    def touches(self, attribute: Attribute) -> bool:
        """Whether ``attribute`` is one of the endpoints."""
        return attribute == self.source or attribute == self.target

    def other(self, attribute: Attribute) -> Attribute:
        """Return the endpoint opposite to ``attribute``."""
        if attribute == self.source:
            return self.target
        if attribute == self.target:
            return self.source
        raise ValueError(f"{attribute} is not an endpoint of {self}")

    def endpoint_in(self, schema_name: str) -> Attribute:
        """Return the endpoint belonging to ``schema_name``."""
        if self.source.schema == schema_name:
            return self.source
        if self.target.schema == schema_name:
            return self.target
        raise ValueError(f"{self} has no endpoint in schema {schema_name!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source.qualified_name}~{self.target.qualified_name}"


def _fix_order(source: Attribute, target: Attribute) -> tuple[Attribute, Attribute]:
    """Canonical endpoint ordering used by :class:`Correspondence`."""
    if (source.schema, source.name) > (target.schema, target.name):
        return target, source
    return source, target


def correspondence(source: Attribute, target: Attribute) -> Correspondence:
    """Convenience constructor with explicit canonicalisation."""
    first, second = _fix_order(source, target)
    return Correspondence(first, second)


class CandidateSet:
    """The matcher output ``C``: correspondences plus confidence values.

    Confidences default to 1.0 when a matcher does not provide them.  The set
    preserves insertion order for deterministic iteration and offers O(1)
    membership tests.
    """

    def __init__(
        self,
        correspondences: Iterable[Correspondence] = (),
        confidences: Optional[Mapping[Correspondence, float]] = None,
    ):
        self._confidences: dict[Correspondence, float] = {}
        self._ordered: Optional[tuple[Correspondence, ...]] = None
        confidences = confidences or {}
        for corr in correspondences:
            self.add(corr, confidences.get(corr, 1.0))

    def add(self, corr: Correspondence, confidence: float = 1.0) -> None:
        """Add a correspondence (replaces the confidence if present)."""
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(f"confidence {confidence} outside [0, 1]")
        self._confidences[corr] = confidence
        self._ordered = None

    def confidence(self, corr: Correspondence) -> float:
        """Matcher confidence of ``corr`` (KeyError if absent)."""
        return self._confidences[corr]

    @property
    def correspondences(self) -> tuple[Correspondence, ...]:
        if self._ordered is None:
            self._ordered = tuple(self._confidences)
        return self._ordered

    def by_schema_pair(self) -> dict[tuple[str, str], list[Correspondence]]:
        """Group correspondences by the pair of schemas they span."""
        groups: dict[tuple[str, str], list[Correspondence]] = {}
        for corr in self._confidences:
            groups.setdefault(corr.schema_pair, []).append(corr)
        return groups

    def restricted_to(self, keep: Iterable[Correspondence]) -> "CandidateSet":
        """A new candidate set containing only ``keep`` (order preserved)."""
        keep_set = set(keep)
        subset = CandidateSet()
        for corr, conf in self._confidences.items():
            if corr in keep_set:
                subset.add(corr, conf)
        return subset

    def merged_with(self, other: "CandidateSet") -> "CandidateSet":
        """Union of two candidate sets; ``other`` wins on confidence ties."""
        merged = CandidateSet()
        for corr, conf in self._confidences.items():
            merged.add(corr, conf)
        for corr, conf in other._confidences.items():
            merged.add(corr, conf)
        return merged

    def __contains__(self, corr: object) -> bool:
        return corr in self._confidences

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._confidences)

    def __len__(self) -> int:
        return len(self._confidences)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CandidateSet({len(self)} correspondences)"
