"""The matching network N = ⟨S, G_S, Γ, C⟩ (paper Section II-B).

:class:`MatchingNetwork` bundles the schemas, the interaction graph, the
integrity constraints and the candidate correspondences, and owns the
compiled :class:`~repro.core.constraints.ConstraintEngine` that every other
component (sampling, repair, instantiation) runs against.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from .constraints import Constraint, ConstraintEngine, default_constraints
from .correspondence import CandidateSet, Correspondence
from .graphs import InteractionGraph, complete_graph
from .schema import Attribute, Schema, validate_disjoint


class MatchingNetwork:
    """A network of schemas with candidate correspondences and constraints.

    Parameters
    ----------
    schemas:
        The schema set S; names must be unique.
    candidates:
        Matcher output C, either a :class:`CandidateSet` or a plain iterable
        of correspondences.
    graph:
        The interaction graph G_S; defaults to the complete graph over the
        schemas (the paper's quality-experiment setting).
    constraints:
        Γ; defaults to the paper's one-to-one + cycle constraints.
    validate:
        When True (default), constraint compilation warns about duplicate
        registrations and declarations referencing unknown candidates
        (:class:`~repro.core.constraints.ConstraintCompilationWarning`).
        Internal re-compilations over narrowed universes pass False.
    """

    def __init__(
        self,
        schemas: Sequence[Schema],
        candidates: CandidateSet | Iterable[Correspondence],
        graph: Optional[InteractionGraph] = None,
        constraints: Optional[Sequence[Constraint]] = None,
        validate: bool = True,
    ):
        validate_disjoint(schemas)
        self.schemas: tuple[Schema, ...] = tuple(schemas)
        self._schema_by_name: dict[str, Schema] = {s.name: s for s in self.schemas}
        if not isinstance(candidates, CandidateSet):
            candidates = CandidateSet(candidates)
        self.candidates: CandidateSet = candidates
        self.graph: InteractionGraph = graph or complete_graph(
            [s.name for s in self.schemas]
        )
        self.constraints: tuple[Constraint, ...] = tuple(
            constraints if constraints is not None else default_constraints()
        )
        self._validate_candidates()
        self.engine = ConstraintEngine(
            self.constraints,
            self.candidates.correspondences,
            self.graph,
            validate=validate,
        )

    def _validate_candidates(self) -> None:
        """Every candidate must connect known attributes along a graph edge."""
        for corr in self.candidates:
            for endpoint in corr.attributes:
                schema = self._schema_by_name.get(endpoint.schema)
                if schema is None:
                    raise ValueError(
                        f"correspondence {corr} references unknown schema "
                        f"{endpoint.schema!r}"
                    )
                if endpoint not in schema:
                    raise ValueError(
                        f"correspondence {corr} references unknown attribute "
                        f"{endpoint.qualified_name!r}"
                    )
            left, right = corr.schema_pair
            if not self.graph.has_edge(left, right):
                raise ValueError(
                    f"correspondence {corr} spans schemas {left!r}/{right!r} "
                    "that are not connected in the interaction graph"
                )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def correspondences(self) -> tuple[Correspondence, ...]:
        """The candidate correspondences C in insertion order."""
        return self.candidates.correspondences

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """A_S: all attributes of all schemas."""
        return tuple(a for schema in self.schemas for a in schema)

    def schema(self, name: str) -> Schema:
        try:
            return self._schema_by_name[name]
        except KeyError:
            raise KeyError(f"network has no schema named {name!r}") from None

    def confidence(self, corr: Correspondence) -> float:
        """Matcher confidence of a candidate correspondence."""
        return self.candidates.confidence(corr)

    def violation_count(self) -> int:
        """Number of minimal constraint violations among all candidates.

        This is the statistic reported in the paper's Table III.
        """
        return len(self.engine.violations)

    def apply_delta(self, delta) -> "DeltaResult":
        """Evolve the network by a :class:`~repro.core.delta.NetworkDelta`.

        Returns a :class:`~repro.core.delta.DeltaResult` whose ``network``
        is the successor (this network is untouched) and whose index maps
        let downstream layers — shard plans, sample stores, sessions —
        carry state over instead of rebuilding.  See
        :func:`repro.core.delta.apply_network_delta`.
        """
        from .delta import apply_network_delta

        return apply_network_delta(self, delta)

    def restricted_to(self, keep: Iterable[Correspondence]) -> "MatchingNetwork":
        """A new network over the same schemas with a reduced candidate set.

        Narrowing the universe is sanctioned (sub-network studies, dead-
        candidate pruning), so the re-compilation skips reference
        validation: declarations naming dropped candidates are expected
        here, not a mis-registration.
        """
        return MatchingNetwork(
            schemas=self.schemas,
            candidates=self.candidates.restricted_to(keep),
            graph=self.graph,
            constraints=self.constraints,
            validate=False,
        )

    def stats(self) -> Mapping[str, int]:
        """Descriptive statistics, in the spirit of the paper's Table II."""
        attribute_counts = [len(schema) for schema in self.schemas]
        return {
            "schemas": len(self.schemas),
            "attributes_min": min(attribute_counts) if attribute_counts else 0,
            "attributes_max": max(attribute_counts) if attribute_counts else 0,
            "attributes_total": sum(attribute_counts),
            "edges": len(self.graph.edges),
            "correspondences": len(self.candidates),
            "violations": self.violation_count(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchingNetwork({len(self.schemas)} schemas, "
            f"{len(self.candidates)} candidates, "
            f"{self.violation_count()} violations)"
        )
