"""Schemas and attributes.

The paper (Section II-B) models a schema as a finite set of attributes with
globally unique identifiers: ``si ∩ sj = ∅`` for distinct schemas.  We realise
uniqueness by qualifying every attribute with the name of the schema it
belongs to, so two schemas may both expose a ``date`` column while the
attribute objects remain distinct.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Attribute:
    """A single schema attribute, globally unique via its schema name.

    Attributes are immutable value objects; identity (equality, hashing,
    ordering) is the ``(schema, name)`` pair.  The hash is precomputed —
    attributes are the keys of every hot dictionary in the system.

    Attributes
    ----------
    schema:
        Name of the schema the attribute belongs to.
    name:
        Attribute name, unique within its schema.
    data_type:
        Optional declared type (``"string"``, ``"date"``, ...), used by the
        data-type matcher.  Excluded from equality so that renaming a type
        does not change attribute identity.
    """

    __slots__ = ("schema", "name", "data_type", "_hash")

    def __init__(self, schema: str, name: str, data_type: Optional[str] = None):
        self.schema = schema
        self.name = name
        self.data_type = data_type
        self._hash = hash((schema, name))

    @property
    def qualified_name(self) -> str:
        """Return the globally unique ``schema.name`` identifier."""
        return f"{self.schema}.{self.name}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.schema == other.schema and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Attribute") -> bool:
        return (self.schema, self.name) < (other.schema, other.name)

    def __le__(self, other: "Attribute") -> bool:
        return (self.schema, self.name) <= (other.schema, other.name)

    def __gt__(self, other: "Attribute") -> bool:
        return (self.schema, self.name) > (other.schema, other.name)

    def __ge__(self, other: "Attribute") -> bool:
        return (self.schema, self.name) >= (other.schema, other.name)

    def __repr__(self) -> str:
        return (
            f"Attribute(schema={self.schema!r}, name={self.name!r}, "
            f"data_type={self.data_type!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.qualified_name


class Schema:
    """A named, ordered collection of :class:`Attribute` objects.

    Iteration order is insertion order, which keeps experiment runs
    deterministic.  Lookup by attribute name is O(1).
    """

    def __init__(self, name: str, attributes: Iterable[Attribute] = ()):
        self.name = name
        self._attributes: dict[str, Attribute] = {}
        for attribute in attributes:
            self.add(attribute)

    @classmethod
    def from_names(
        cls,
        name: str,
        attribute_names: Iterable[str],
        data_types: Optional[dict[str, str]] = None,
    ) -> "Schema":
        """Build a schema from bare attribute names.

        ``data_types`` optionally maps attribute names to declared types.
        """
        data_types = data_types or {}
        schema = cls(name)
        for attribute_name in attribute_names:
            schema.add(
                Attribute(
                    schema=name,
                    name=attribute_name,
                    data_type=data_types.get(attribute_name),
                )
            )
        return schema

    def add(self, attribute: Attribute) -> None:
        """Add an attribute; it must belong to this schema and be fresh."""
        if attribute.schema != self.name:
            raise ValueError(
                f"attribute {attribute.qualified_name!r} does not belong to "
                f"schema {self.name!r}"
            )
        if attribute.name in self._attributes:
            raise ValueError(
                f"duplicate attribute {attribute.name!r} in schema {self.name!r}"
            )
        self._attributes[attribute.name] = attribute

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes in insertion order."""
        return tuple(self._attributes.values())

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by unqualified name."""
        try:
            return self._attributes[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no attribute {name!r}"
            ) from None

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Attribute):
            return self._attributes.get(item.name) == item
        if isinstance(item, str):
            return item in self._attributes
        return False

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes.values())

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.name!r}, {len(self)} attributes)"


def validate_disjoint(schemas: Iterable[Schema]) -> None:
    """Raise :class:`ValueError` unless all schema names are unique.

    Name uniqueness is what guarantees the paper's global attribute
    disjointness under our qualified-name identity scheme.
    """
    seen: set[str] = set()
    for schema in schemas:
        if schema.name in seen:
            raise ValueError(f"duplicate schema name {schema.name!r}")
        seen.add(schema.name)
