"""Interaction graphs: which schema pairs of a network get matched.

The paper's experiments use complete interaction graphs for the quality
studies (Section VI-C) and Erdős–Rényi random graphs for the scalability
study (Section VI-B, Fig. 6).  We provide both plus a few extra topologies
that are useful for examples and tests.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence


class InteractionGraph:
    """An undirected graph over schema names.

    Edges are stored canonically as sorted 2-tuples of schema names.  The
    class is deliberately tiny — just what the matching network needs — and
    exposes :meth:`triangles` and :meth:`cycles` for the cycle constraint.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        edges: Iterable[tuple[str, str]] = (),
    ):
        self._adjacency: dict[str, set[str]] = {}
        for node in nodes:
            self.add_node(node)
        for left, right in edges:
            self.add_edge(left, right)

    def add_node(self, node: str) -> None:
        self._adjacency.setdefault(node, set())

    def add_edge(self, left: str, right: str) -> None:
        """Add an undirected edge, creating endpoints as needed."""
        if left == right:
            raise ValueError(f"self-loop on {left!r} is not allowed")
        self.add_node(left)
        self.add_node(right)
        self._adjacency[left].add(right)
        self._adjacency[right].add(left)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._adjacency)

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        seen: list[tuple[str, str]] = []
        for node in self._adjacency:
            for neighbour in self._adjacency[node]:
                if node < neighbour:
                    seen.append((node, neighbour))
        return tuple(sorted(seen))

    def neighbors(self, node: str) -> frozenset[str]:
        return frozenset(self._adjacency[node])

    def has_edge(self, left: str, right: str) -> bool:
        return right in self._adjacency.get(left, ())

    def degree(self, node: str) -> int:
        return len(self._adjacency[node])

    def triangles(self) -> Iterator[tuple[str, str, str]]:
        """Yield each 3-clique once, with nodes in sorted order."""
        for left, right in self.edges:
            common = self._adjacency[left] & self._adjacency[right]
            for third in sorted(common):
                if third > right:
                    yield (left, right, third)

    def cycles(self, max_length: int = 3) -> Iterator[tuple[str, ...]]:
        """Yield simple cycles of length 3..max_length, each exactly once.

        Cycles are emitted as node tuples starting from their smallest node
        and continuing towards the smaller of that node's two cycle
        neighbours, which canonicalises direction.
        """
        if max_length < 3:
            return
        nodes = sorted(self._adjacency)
        for start in nodes:
            stack: list[tuple[str, ...]] = [(start,)]
            while stack:
                path = stack.pop()
                head = path[-1]
                for neighbour in sorted(self._adjacency[head]):
                    if neighbour == start and len(path) >= 3:
                        # Canonical direction: second node < last node.
                        if path[1] < path[-1]:
                            yield path
                        continue
                    if neighbour <= start or neighbour in path:
                        continue
                    if len(path) < max_length:
                        stack.append(path + (neighbour,))

    def __contains__(self, node: object) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InteractionGraph({len(self)} nodes, {len(self.edges)} edges)"


def complete_graph(schema_names: Sequence[str]) -> InteractionGraph:
    """Every schema matched against every other (paper Section VI-C)."""
    graph = InteractionGraph(nodes=schema_names)
    for i, left in enumerate(schema_names):
        for right in schema_names[i + 1 :]:
            graph.add_edge(left, right)
    return graph


def erdos_renyi_graph(
    schema_names: Sequence[str],
    edge_probability: float,
    rng: random.Random | None = None,
    ensure_connected: bool = True,
) -> InteractionGraph:
    """G(n, p) random interaction graph (paper Section VI-B, Fig. 6).

    With ``ensure_connected`` a spanning path is added first so that every
    schema participates in at least one matching task.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = rng or random.Random()
    graph = InteractionGraph(nodes=schema_names)
    if ensure_connected:
        for left, right in zip(schema_names, schema_names[1:]):
            graph.add_edge(left, right)
    for i, left in enumerate(schema_names):
        for right in schema_names[i + 1 :]:
            if rng.random() < edge_probability:
                graph.add_edge(left, right)
    return graph


def star_graph(hub: str, leaves: Sequence[str]) -> InteractionGraph:
    """Hub-and-spoke topology (a mediated-schema-like layout)."""
    graph = InteractionGraph(nodes=[hub, *leaves])
    for leaf in leaves:
        graph.add_edge(hub, leaf)
    return graph


def ring_graph(schema_names: Sequence[str]) -> InteractionGraph:
    """A single cycle through all schemas; the minimal cyclic topology."""
    if len(schema_names) < 3:
        raise ValueError("a ring needs at least three schemas")
    graph = InteractionGraph(nodes=schema_names)
    for left, right in zip(schema_names, schema_names[1:]):
        graph.add_edge(left, right)
    graph.add_edge(schema_names[-1], schema_names[0])
    return graph


def path_graph(schema_names: Sequence[str]) -> InteractionGraph:
    """A chain of pairwise matchings; acyclic, so no cycle constraints."""
    graph = InteractionGraph(nodes=schema_names)
    for left, right in zip(schema_names, schema_names[1:]):
        graph.add_edge(left, right)
    return graph
