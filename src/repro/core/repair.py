"""Greedy repair of an inconsistent instance (paper Algorithm 4).

``repair`` resolves the violations created by adding a correspondence to an
instance by repeatedly removing the correspondence involved in the most
violations, never touching F⁺ and (by preference) not the newly added
correspondence.  The paper's algorithm excludes the added correspondence from
removal outright; when a violation consists solely of the added
correspondence and F⁺ members that rule would loop forever, so we fall back
to removing the added correspondence itself, and raise when even that cannot
restore consistency (which means F⁺ is contradictory).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from .constraints import ConstraintEngine
from .correspondence import Correspondence


class UnrepairableError(ValueError):
    """Raised when violations persist among protected correspondences."""


def repair(
    instance: Iterable[Correspondence],
    added: Correspondence,
    approved: Iterable[Correspondence],
    engine: ConstraintEngine,
    rng: Optional[random.Random] = None,
    assume_consistent: bool = True,
) -> set[Correspondence]:
    """Return a consistent instance containing ``added`` where possible.

    Parameters mirror the paper's ``repair(I, c, F⁺, Γ)``: ``instance`` is
    the instance, ``added`` the correspondence whose insertion caused the
    violations, ``approved`` the protected F⁺ set and ``engine`` the
    compiled constraint engine standing in for Γ.

    With ``assume_consistent`` (the default, and the paper's setting) the
    input instance is trusted to satisfy Γ, so only violations involving
    ``added`` can be active — adding one correspondence activates only
    violations containing it, and removals never activate new ones (the
    constraints are anti-monotone).  Pass ``assume_consistent=False`` to
    repair an arbitrary, possibly inconsistent instance.

    Ties between equally-violating correspondences are broken uniformly at
    random when ``rng`` is given, deterministically (canonical correspondence
    order) otherwise.
    """
    current: set[Correspondence] = set(instance)
    current.add(added)
    protected = frozenset(approved)

    if assume_consistent:
        active = [
            violation
            for violation in engine.violations_involving(added)
            if violation.is_within(current)
        ]
    else:
        active = engine.violations_within(current)

    while active:
        counts: dict[Correspondence, int] = {}
        for violation in active:
            for corr in violation:
                counts[corr] = counts.get(corr, 0) + 1

        removable = {
            corr: count
            for corr, count in counts.items()
            if corr not in protected and corr != added
        }
        if not removable:
            # Fall back to sacrificing the added correspondence itself.
            if added not in protected and counts.get(added):
                current.discard(added)
                active = [v for v in active if added not in v.correspondences]
                continue
            raise UnrepairableError(
                "constraint violations persist among approved correspondences"
            )

        best_count = max(removable.values())
        best = [corr for corr, count in removable.items() if count == best_count]
        if rng is not None and len(best) > 1:
            victim = best[rng.randrange(len(best))]
        else:
            victim = min(best)
        current.discard(victim)
        active = [v for v in active if victim not in v.correspondences]
    return current


def greedy_maximalize(
    instance: Iterable[Correspondence],
    candidates: Iterable[Correspondence],
    disapproved: Iterable[Correspondence],
    engine: ConstraintEngine,
    rng: Optional[random.Random] = None,
) -> set[Correspondence]:
    """Extend a consistent instance to a *maximal* one (Definition 1).

    Candidates outside F⁻ are tried in random order (or canonical order when
    no ``rng`` is given) and added whenever they do not activate a violation.
    The sampler uses this to turn the random walk's consistent sets into
    genuine matching instances.
    """
    current: set[Correspondence] = set(instance)
    blocked = frozenset(disapproved)
    remaining = [c for c in candidates if c not in current and c not in blocked]
    if rng is not None:
        rng.shuffle(remaining)
    for corr in remaining:
        if engine.can_add(current, corr):
            current.add(corr)
    return current
