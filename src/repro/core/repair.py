"""Greedy repair of an inconsistent instance (paper Algorithm 4).

``repair`` resolves the violations created by adding a correspondence to an
instance by repeatedly removing the correspondence involved in the most
violations, never touching F⁺ and (by preference) not the newly added
correspondence.  The paper's algorithm excludes the added correspondence from
removal outright; when a violation consists solely of the added
correspondence and F⁺ members that rule would loop forever, so we fall back
to removing the added correspondence itself, and raise when even that cannot
restore consistency (which means F⁺ is contradictory).

Hot-path layout: the real kernels — :func:`repair_mask` and
:func:`greedy_maximalize_mask` — run entirely in the engine's bitmask index
space (selections are ints, violations are precompiled masks).  The public
:func:`repair` / :func:`greedy_maximalize` keep the original frozenset API
and are thin conversion wrappers; the sampler, the instantiation search and
the enumerator call the mask kernels directly.

Deterministic behaviour (``rng=None``) of the kernels is bit-for-bit
identical to the historical frozenset implementation: the victim of a repair
round is the violation-count maximiser with canonical-order tie-break, and
maximalisation tries candidates in insertion order.  With an ``rng``, ties
and candidate order are randomised with the same distribution as before
(although the consumed random stream differs from older releases).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

import numpy as np

from .constraints import ConstraintEngine, mask_indices, shuffled
from .correspondence import Correspondence

#: Above this many available candidates, ``greedy_maximalize_mask`` runs the
#: engine's vectorised blocked pre-filter before the per-candidate scan.
_PREFILTER_MIN_AVAIL = 24


class UnrepairableError(ValueError):
    """Raised when violations persist among protected correspondences."""


def _pick_bit(others: int, rank: tuple[int, ...], rng: Optional[random.Random]) -> int:
    """One removable bit of ``others``: canonical-min without ``rng``,
    uniform with it.  ``others`` is non-zero."""
    bit = others & -others
    rest = others ^ bit
    if not rest:
        return bit
    if rng is None:
        if rest & (rest - 1):  # three or more bits: general scan
            best, best_rank = 0, len(rank) + 1
            while others:
                candidate = others & -others
                others ^= candidate
                r = rank[candidate.bit_length() - 1]
                if r < best_rank:
                    best, best_rank = candidate, r
            return best
        if rank[rest.bit_length() - 1] < rank[bit.bit_length() - 1]:
            return rest
        return bit
    count = others.bit_count()
    choice = rng.randrange(count)
    while choice:
        others ^= others & -others
        choice -= 1
    return others & -others


def repair_mask(
    engine: ConstraintEngine,
    instance: int,
    index: Optional[int],
    protected: int = 0,
    rng: Optional[random.Random] = None,
    assume_consistent: bool = True,
) -> int:
    """Mask-space ``repair(I, c, F⁺, Γ)``: the hot kernel.

    ``instance`` is the selection mask, ``index`` the candidate whose
    insertion caused the violations, ``protected`` the F⁺ mask.  Returns the
    repaired selection mask (always containing bit ``index`` unless the only
    repair was to sacrifice it).  ``index=None`` repairs the instance as-is
    (only meaningful with ``assume_consistent=False``; no bit is privileged
    or protected-by-preference).
    """
    if index is None:
        bit = 0
        cur = instance
        if assume_consistent:
            return cur
    else:
        bit = engine.bits[index]
        cur = instance | bit
    if assume_consistent:
        # Fast exit: no co-member of any violation of ``index`` is selected,
        # so nothing can have activated (common along sparse walk states).
        # A None union means a singleton violation — never safe to skip.
        conflict_union = engine._conflict_union[index]
        if conflict_union is not None and not (instance & conflict_union):
            return cur
        active = engine.mask_active_violations(cur, index)
    else:
        violation_masks = engine.violation_masks
        active = [
            violation_masks[i] for i in engine.mask_violations_within(cur)
        ]
    if not active:
        return cur
    rank = engine._rank
    while True:
        count = len(active)
        if count == 1:
            others = active[0] & ~bit
            if protected:
                others &= ~protected
            if others:
                return cur ^ _pick_bit(others, rank, rng)
            if (active[0] & bit) and not (bit & protected):
                return cur ^ bit
            raise UnrepairableError(
                "constraint violations persist among approved correspondences"
            )
        if count == 2:
            first, second = active
            if first & second == bit:
                # The two violations share only the added bit, so their
                # resolutions decouple: removing each one's best victim is
                # the same greedy outcome (and, with rng, the same
                # distribution) as two coupled rounds.
                others_a = first & ~bit
                others_b = second & ~bit
                if protected:
                    others_a &= ~protected
                    others_b &= ~protected
                if others_a and others_b:
                    return (
                        cur
                        ^ _pick_bit(others_a, rank, rng)
                        ^ _pick_bit(others_b, rank, rng)
                    )
                if bit and not (bit & protected):
                    # Strip the removable side first (mirroring the greedy
                    # rounds), then sacrifice the added bit, which silences
                    # the unremovable violation too.
                    if others_a:
                        cur ^= _pick_bit(others_a, rank, rng)
                    elif others_b:
                        cur ^= _pick_bit(others_b, rank, rng)
                    return cur ^ bit
                raise UnrepairableError(
                    "constraint violations persist among approved correspondences"
                )
        # General round: remove the most-violating removable correspondence.
        counts: dict[int, int] = {}
        for vmask in active:
            remaining = vmask
            while remaining:
                member = remaining & -remaining
                counts[member] = counts.get(member, 0) + 1
                remaining ^= member
        victim, best_count, best_rank = 0, 0, len(rank) + 1
        ties: list[int] = []
        for member, member_count in counts.items():
            if member == bit or (member & protected):
                continue
            if member_count > best_count:
                victim, best_count = member, member_count
                if rng is None:
                    best_rank = rank[member.bit_length() - 1]
                else:
                    ties = [member]
            elif member_count == best_count and member_count:
                if rng is None:
                    r = rank[member.bit_length() - 1]
                    if r < best_rank:
                        victim, best_rank = member, r
                else:
                    ties.append(member)
        if rng is not None and len(ties) > 1:
            victim = ties[rng.randrange(len(ties))]
        if not victim:
            if not (bit & protected) and counts.get(bit):
                victim = bit
            else:
                raise UnrepairableError(
                    "constraint violations persist among approved correspondences"
                )
        cur ^= victim
        active = [vmask for vmask in active if not (vmask & victim)]
        if not active:
            return cur


def greedy_maximalize_mask(
    engine: ConstraintEngine,
    instance: int,
    allowed: int,
    rng: Optional[random.Random] = None,
    np_rng: Optional[np.random.Generator] = None,
    conflicted_avail: Optional[set] = None,
) -> int:
    """Mask-space greedy maximalisation: the sampler's emission kernel.

    ``allowed`` is the candidate mask minus F⁻.  Candidates are tried in
    random order (insertion order when ``rng`` is None) and added whenever
    they activate no violation.

    Violation-free candidates — the ones no compiled violation mentions —
    can neither block nor be blocked, so the outcome never depends on where
    they land in the scan order: they are OR-ed in wholesale and only the
    conflict-involved availability is shuffled and scanned.  (The resulting
    maximal-instance distribution is exactly the full-shuffle one; the
    consumed random stream is shorter.)  A vectorised pre-filter further
    discards the candidates already blocked by ``instance`` — blocking is
    monotone, so they could never be added in any order — leaving the exact
    sequential check to the few survivors.

    ``np_rng`` supplies the scan permutation from a numpy generator (a
    C-level shuffle) instead of the pure-Python Fisher–Yates over ``rng`` —
    same uniform-permutation distribution, an order of magnitude cheaper for
    the sampler, which emits thousands of maximalisations per refill.  When
    both are given, ``np_rng`` wins; when neither is, the scan is the
    deterministic insertion order.

    ``conflicted_avail`` (only with ``np_rng``) hands over the available
    conflict-involved indices as a pre-maintained set — the sampler's walk
    keeps it patched incrementally — skipping the mask-to-indices
    round-trip here entirely.  It must equal the conflicted part of
    ``allowed & ~instance``.
    """
    cur = instance
    avail = allowed & ~cur
    if not avail:
        return cur
    free = avail & engine.violation_free_mask
    if free:
        cur |= free
        avail ^= free
        if not avail:
            return cur
    if conflicted_avail is not None and np_rng is not None:
        count = len(conflicted_avail)
        if count > 1:
            indices = np_rng.permutation(
                np.fromiter(conflicted_avail, dtype=np.intp, count=count)
            ).tolist()
        else:
            indices = list(conflicted_avail)
    elif avail.bit_count() > _PREFILTER_MIN_AVAIL:
        # Large availability: extract the index list with array ops.  The
        # blocked pre-filter additionally pays off when the *conflicted*
        # part of the selection is dense enough that a good share of the
        # candidates are already blocked; from a sparse walk state almost
        # everything survives and the extra array pass is pure overhead.
        # (Free bits never block, so they are excluded from the estimate.)
        avail_vector = engine.selection_array(avail)[:-1]
        if (
            (cur & engine.conflicted_mask).bit_count() * 3
            >= engine.conflicted_count
        ):
            survivors = np.flatnonzero(avail_vector & ~engine.blocked_candidates(cur))
        else:
            survivors = np.flatnonzero(avail_vector)
        if np_rng is not None:
            indices = np_rng.permutation(survivors).tolist()
        elif rng is not None:
            indices = shuffled(survivors.tolist(), rng)
        else:
            indices = survivors.tolist()
    elif np_rng is not None:
        indices = np_rng.permutation(
            np.asarray(mask_indices(avail), dtype=np.intp)
        ).tolist()
    elif rng is not None:
        indices = shuffled(mask_indices(avail), rng)
    else:
        indices = mask_indices(avail)
    scan_rows = engine._scan_rows
    for bit, partners, large in map(scan_rows.__getitem__, indices):
        if cur & partners:
            continue
        if large:
            grown = cur | bit
            for vmask in large:
                if vmask & grown == vmask:
                    break
            else:
                cur = grown
            continue
        cur |= bit
    return cur


def wave_maximalize_batch(
    engine: ConstraintEngine,
    instances: Sequence[int],
    allowed: int,
    np_rng: Optional[np.random.Generator] = None,
    priorities: Optional[np.ndarray] = None,
) -> list[int]:
    """Maximalise a whole batch of instances with priority waves.

    The batched (Luby-style) counterpart of the scalar
    :func:`greedy_maximalize_mask`: instead of scanning one emission's
    conflicted availability sequentially, every emission draws a random
    priority per conflicted candidate and candidates are admitted in numpy
    *waves* — a candidate is decided as soon as every lower-priority
    violation partner (the engine's :class:`~repro.core.constraints.WaveTables`
    dependency arcs) has been decided, and admitted unless a violation would
    complete against the already-admitted selection.  Violation-free
    candidates are OR-ed in wholesale up front, exactly as the scalar kernel
    does.

    **Exactness.**  For a fixed priority assignment the wave schedule
    computes precisely the sequential greedy scan in increasing-priority
    order: when a candidate is decided, its selected violation partners are
    exactly the admitted lower-priority ones (higher-priority partners are
    still waiting on it), so every admission test sees the same selection
    the sequential scan would.  Priority ties decide the lower index first
    (``dep_tie``), mirroring an index-ordered scan.  With iid uniform
    priorities per emission (``np_rng``) the induced scan order is a uniform
    permutation of the conflicted availability — the same emission
    distribution as the scalar kernel's ``np_rng.permutation`` path, with
    the whole refill's emissions decided in a handful of array waves (the
    dependency depth of random priorities is logarithmic).

    ``instances`` are walk-state selection masks, all sampled under the same
    ``allowed`` mask (candidates minus F⁻).  ``priorities`` overrides the
    random draw with an explicit ``(len(instances), n)`` float array (only
    the conflicted columns matter) — the hook the fixed-priority parity
    tests use; with neither ``np_rng`` nor ``priorities`` the scan order is
    the deterministic ascending index order, bit-for-bit
    :func:`greedy_maximalize_mask`'s ``rng=None`` behaviour.  Returns the
    maximal masks in input order.
    """
    count = len(instances)
    if not count:
        return []
    free = allowed & engine.violation_free_mask
    base = [instance | free for instance in instances]
    if not allowed & engine.conflicted_mask:
        return base
    tables = engine.wave_tables()
    conflicted = tables.conflicted
    m = len(conflicted)
    rows = engine.selection_matrix(base, sentinel=False)
    # Everything below runs transposed — (candidates, emissions) — with the
    # emission axis packed into uint8 bit-lanes: a wave's boolean algebra
    # over the whole batch is then a few kilobytes of byte ops, and the
    # per-candidate group-ORs reduce rows a few dozen bytes wide.  Padding
    # bit-lanes stay zero throughout (packbits zero-pads, and `live` only
    # ever shrinks), so they never leak into real emissions.
    lanes = (count + 7) // 8
    sel = np.empty((m + 1, lanes), dtype=np.uint8)
    sel[:m] = np.packbits(rows[:, conflicted].T, axis=1, bitorder="little")
    sel[m] = 0xFF
    avail = engine.selection_array(allowed & engine.conflicted_mask)[:-1]
    pad = np.packbits(np.ones(count, dtype=bool), bitorder="little")
    live = np.where(avail[conflicted], 0xFF, 0).astype(np.uint8)[:, None]
    live = (live & ~sel[:m]) & pad
    if priorities is not None:
        priorities = np.asarray(priorities, dtype=np.float64)
        if priorities.shape != (count, engine.n):
            raise ValueError(
                f"priorities must have shape {(count, engine.n)}, "
                f"got {priorities.shape}"
            )
        pri = np.ascontiguousarray(priorities[:, conflicted].T)
        # NaN compares false both ways: nothing would wait on a NaN
        # neighbour and mutually exclusive partners would co-admit —
        # silently inconsistent output, so reject it here.
        if np.isnan(pri).any():
            raise ValueError("priorities must not contain NaN")
    elif np_rng is not None:
        pri = np_rng.random((m, count))
    else:
        pri = np.broadcast_to(
            np.arange(m, dtype=np.float64)[:, None], (m, count)
        )
    dep_src, dep_dst, dep_tie = tables.dep_src, tables.dep_dst, tables.dep_tie
    dep_starts, dep_group = tables.dep_starts, tables.dep_group
    blk_others, blk_starts, blk_group = (
        tables.blk_others,
        tables.blk_starts,
        tables.blk_group,
    )
    # Per-group row counts, for restricting the blocking scan to the rows
    # of still-live candidates as the waves drain the batch.
    blk_sizes = np.diff(np.append(blk_starts, len(blk_others)))
    # The priority comparison per dependency arc is wave-invariant: hoist
    # it out of the loop and pack it into the same bit-lane layout.
    if len(dep_src):
        pri_dst = pri[dep_dst]
        pri_src = pri[dep_src]
        arc_wins = np.packbits(
            (pri_dst < pri_src) | ((pri_dst == pri_src) & dep_tie),
            axis=1,
            bitorder="little",
        )
    while live.any():
        # Prune live candidates some violation already blocks: blocking is
        # monotone in the selection, so their fate (rejected) is known now —
        # deciding them early frees their partners from waiting on them
        # without changing any admission test.  Only rows of *still-live*
        # candidates are recomputed: a dead candidate's blocked bit can
        # never strip anything from ``live`` again, so its rows drop out of
        # the scan as the waves drain the batch (the tail waves touch a
        # small fraction of the hypergraph).
        if len(blk_others):
            keep = (live.any(axis=1))[blk_group]
            if keep.any():
                if keep.all():
                    row_idx: object = slice(None)
                    starts, groups = blk_starts, blk_group
                else:
                    sizes = blk_sizes[keep]
                    starts = np.zeros(len(sizes), dtype=np.intp)
                    np.cumsum(sizes[:-1], out=starts[1:])
                    row_idx = np.repeat(blk_starts[keep] - starts, sizes)
                    row_idx += np.arange(len(row_idx), dtype=np.intp)
                    groups = blk_group[keep]
                live_others = blk_others[row_idx]
                hit = sel[live_others[:, 0]]
                for column in range(1, live_others.shape[1]):
                    hit = hit & sel[live_others[:, column]]
                blocked = np.zeros((m, lanes), dtype=np.uint8)
                blocked[groups] = np.bitwise_or.reduceat(hit, starts, axis=0)
                live &= ~blocked
        # Ready: every live lower-priority partner has been decided.
        if len(dep_src):
            cond = live[dep_dst] & arc_wins
            waiting = np.zeros((m, lanes), dtype=np.uint8)
            waiting[dep_group] = np.bitwise_or.reduceat(cond, dep_starts, axis=0)
            ready = live & ~waiting
        else:
            ready = live
        # A live minimum-(priority, index) candidate is always ready (NaN,
        # the one float that breaks the argument, is rejected on input), so
        # the wave always makes progress; the guard is pure defence.
        if not ready.any():
            if not live.any():
                break
            raise ValueError("priority waves stalled")
        # Ready candidates are mutually violation-free (two co-members of a
        # violation gate each other), and the blocked ones were just pruned:
        # admit them all.
        sel[:m] |= ready
        live &= ~ready
    rows[:, conflicted] = (
        np.unpackbits(sel[:m], axis=1, bitorder="little")[:, :count].T
    )
    packed = np.packbits(rows, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def repair(
    instance: Iterable[Correspondence],
    added: Correspondence,
    approved: Iterable[Correspondence],
    engine: ConstraintEngine,
    rng: Optional[random.Random] = None,
    assume_consistent: bool = True,
) -> set[Correspondence]:
    """Return a consistent instance containing ``added`` where possible.

    Parameters mirror the paper's ``repair(I, c, F⁺, Γ)``: ``instance`` is
    the instance, ``added`` the correspondence whose insertion caused the
    violations, ``approved`` the protected F⁺ set and ``engine`` the
    compiled constraint engine standing in for Γ.

    With ``assume_consistent`` (the default, and the paper's setting) the
    input instance is trusted to satisfy Γ, so only violations involving
    ``added`` can be active — adding one correspondence activates only
    violations containing it, and removals never activate new ones (the
    constraints are anti-monotone).  Pass ``assume_consistent=False`` to
    repair an arbitrary, possibly inconsistent instance.

    Ties between equally-violating correspondences are broken uniformly at
    random when ``rng`` is given, deterministically (canonical correspondence
    order) otherwise.  This is the boundary wrapper around
    :func:`repair_mask`.
    """
    instance = set(instance)
    index = engine.index_of.get(added)
    if index is None and assume_consistent:
        # Not a compiled candidate: it cannot participate in any violation,
        # and a consistent input has nothing else to repair.
        instance.add(added)
        return instance
    repaired = repair_mask(
        engine,
        engine.mask_of(instance),
        index,
        engine.mask_of(approved),
        rng=rng,
        assume_consistent=assume_consistent,
    )
    result = set(engine.corrs_of(repaired))
    # Preserve members outside the compiled candidate set (they participate
    # in no violation, so they can never be repair victims).
    result |= engine.outside_candidates(instance)
    if index is None:
        result.add(added)
    return result


def greedy_maximalize(
    instance: Iterable[Correspondence],
    candidates: Iterable[Correspondence],
    disapproved: Iterable[Correspondence],
    engine: ConstraintEngine,
    rng: Optional[random.Random] = None,
) -> set[Correspondence]:
    """Extend a consistent instance to a *maximal* one (Definition 1).

    Candidates outside F⁻ are tried in random order (or the caller's
    ``candidates`` order when no ``rng`` is given) and added whenever they
    do not activate a violation.  The sampler uses this to turn the random
    walk's consistent sets into genuine matching instances; this is the
    boundary wrapper around :func:`greedy_maximalize_mask`.

    Candidates outside the engine's compiled set participate in no
    violation, so they are always added (as the set-based implementation
    always did); members of ``instance`` are never dropped.
    """
    candidates = tuple(candidates)
    blocked = frozenset(disapproved)
    if rng is None:
        # Deterministic mode honours the caller-supplied candidate order.
        current = set(instance)
        mask = engine.mask_of(current)
        index_of = engine.index_of
        bits = engine.bits
        for corr in candidates:
            if corr in current or corr in blocked:
                continue
            index = index_of.get(corr)
            if index is None:
                current.add(corr)
            elif not (mask & bits[index]) and engine.mask_can_add(mask, index):
                mask |= bits[index]
                current.add(corr)
        return current
    maximal = greedy_maximalize_mask(
        engine,
        engine.mask_of(instance),
        engine.mask_of(candidates) & ~engine.mask_of(disapproved),
        rng=rng,
    )
    result = set(engine.corrs_of(maximal))
    # Preserve members outside the compiled candidate set (the frozenset API
    # never dropped them; they cannot conflict with anything) and add the
    # vacuously-addable unknown candidates.
    result |= engine.outside_candidates(instance)
    result |= engine.outside_candidates(candidates) - blocked
    return result
