"""Instantiation of an approximate selective matching (paper Section V).

Problem 2 asks for a matching instance with (i) minimal repair distance
Δ(I, C) and (ii), among those, maximal likelihood u(I) = Π_{c∈I} p_c.  The
decision version is NP-complete (Theorem 1: reduction from maximum
independent set), so Algorithm 2 runs a two-step meta-heuristic: greedily
pick the best sampled instance, then improve it with a tabu-guarded
randomized local search driven by roulette-wheel selection and `repair()`.

``exact_instantiate`` solves the problem exactly by enumeration and is used
to validate the heuristic on small networks.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Iterable, Optional, Sequence

from .correspondence import Correspondence
from .feedback import Feedback
from .instances import enumerate_instances
from .network import MatchingNetwork
from .probability import ProbabilisticNetwork
from .repair import greedy_maximalize_mask, repair_mask
from .sampling import symmetric_difference_size

#: Probability floor used inside log-likelihoods so that a sampled zero does
#: not collapse the whole product (the instance may still be forced to keep
#: that correspondence for maximality).
_LIKELIHOOD_FLOOR = 1e-9


def repair_distance(
    instance: Iterable[Correspondence], candidates: Iterable[Correspondence]
) -> int:
    """Δ(I, C) — symmetric difference; equals |C| − |I| whenever I ⊆ C."""
    return symmetric_difference_size(instance, candidates)


def log_likelihood(
    instance: Iterable[Correspondence],
    probabilities: dict[Correspondence, float],
) -> float:
    """log u(I) = Σ log p_c, with probabilities floored at a tiny epsilon."""
    return sum(
        math.log(max(probabilities.get(corr, 0.0), _LIKELIHOOD_FLOOR))
        for corr in instance
    )


def _roulette_wheel(
    rng: random.Random,
    weighted: Sequence[tuple],
) -> object:
    """Fitness-proportionate selection; uniform when all weights vanish.

    Items may be correspondences or candidate indices — only the weights
    matter here.
    """
    total = sum(weight for _, weight in weighted)
    if total <= 0.0:
        return weighted[rng.randrange(len(weighted))][0]
    pick = rng.random() * total
    cumulative = 0.0
    for item, weight in weighted:
        cumulative += weight
        if pick <= cumulative:
            return item
    return weighted[-1][0]


def instantiate(
    pnet: ProbabilisticNetwork,
    iterations: int = 100,
    use_likelihood: bool = True,
    tabu_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> frozenset[Correspondence]:
    """Algorithm 2: derive one trusted matching from ⟨N, P⟩.

    Parameters
    ----------
    pnet:
        The probabilistic matching network (feedback already folded into P).
    iterations:
        ``k`` — the local-search step bound; also the tabu-queue capacity
        unless ``tabu_size`` overrides it.
    use_likelihood:
        When False the likelihood tie-break is ignored (the "Without
        Likelihood" variant of Fig. 11) and roulette weights are uniform.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    rng = rng or random.Random()
    network = pnet.network
    engine = network.engine
    feedback = pnet.feedback
    probabilities = pnet.probabilities()
    candidates = network.correspondences

    # The whole search runs in the engine's bitmask index space; conversions
    # happen once on entry (samples, feedback) and once on exit.
    n = engine.n
    approved = engine.mask_of(feedback.approved)
    allowed = engine.full_mask & ~engine.mask_of(feedback.disapproved)
    log_prob = [
        math.log(max(probabilities.get(corr, 0.0), _LIKELIHOOD_FLOOR))
        for corr in candidates
    ]
    weight_of = [probabilities.get(corr, 0.0) for corr in candidates]

    def mask_log_likelihood(mask: int) -> float:
        value = 0.0
        while mask:
            bit = mask & -mask
            value += log_prob[bit.bit_length() - 1]
            mask ^= bit
        return value

    def better(challenger: int, incumbent: int) -> bool:
        # Δ(I, C) = |C| − |I| for I ⊆ C, so fewer missing bits wins.
        challenger_distance = n - challenger.bit_count()
        incumbent_distance = n - incumbent.bit_count()
        if challenger_distance != incumbent_distance:
            return challenger_distance < incumbent_distance
        if not use_likelihood:
            return False
        return mask_log_likelihood(challenger) > mask_log_likelihood(incumbent)

    # ------------------------------------------------------------------
    # Step 1: initialisation — greedy pick among the samples.
    # ------------------------------------------------------------------
    sample_masks: Sequence[int] = getattr(pnet.estimator, "sample_masks", None)
    if sample_masks is None:
        try:
            sample_masks = [engine.mask_of(sample) for sample in pnet.samples()]
        except TypeError:
            sample_masks = ()
    best: Optional[int] = None
    for sample_mask in sample_masks:
        if best is None or better(sample_mask, best):
            best = sample_mask
    if best is None:
        best = greedy_maximalize_mask(engine, approved, allowed, rng=rng)

    # ------------------------------------------------------------------
    # Step 2: optimisation — tabu-guarded randomized local search.
    # ------------------------------------------------------------------
    tabu: deque[int] = deque()
    tabu_capacity = tabu_size or max(1, iterations)
    tabu_mask = 0
    current = best
    for _ in range(iterations):
        pool = allowed & ~current & ~tabu_mask
        if not pool:
            break
        weighted: list[tuple[int, float]] = []
        remaining = pool
        while remaining:
            bit = remaining & -remaining
            index = bit.bit_length() - 1
            weighted.append((index, weight_of[index] if use_likelihood else 1.0))
            remaining ^= bit
        chosen = _roulette_wheel(rng, weighted)
        tabu.append(chosen)
        tabu_mask |= engine.bits[chosen]
        if len(tabu) > tabu_capacity:
            expired = tabu.popleft()
            tabu_mask &= ~engine.bits[expired]
        current = repair_mask(engine, current, chosen, approved, rng=rng)
        current = greedy_maximalize_mask(engine, current, allowed, rng=rng)
        if better(current, best):
            best = current
    result = engine.corrs_of(best)
    # Approved correspondences outside the candidate set cannot live in the
    # mask space; restore them at the boundary (F⁺ ⊆ I must hold).
    extra = engine.outside_candidates(feedback.approved)
    return result | extra if extra else result


def exact_instantiate(
    network: MatchingNetwork,
    probabilities: dict[Correspondence, float],
    feedback: Optional[Feedback] = None,
    use_likelihood: bool = True,
) -> frozenset[Correspondence]:
    """Solve Problem 2 exactly by enumerating Ω (exponential; tests only)."""
    feedback = feedback or Feedback()
    instances = enumerate_instances(network, feedback)
    if not instances:
        raise ValueError("no matching instance exists for this feedback")
    candidates = network.correspondences

    def key(instance: frozenset[Correspondence]) -> tuple[float, float]:
        distance = repair_distance(instance, candidates)
        likelihood = (
            log_likelihood(instance, probabilities) if use_likelihood else 0.0
        )
        return (distance, -likelihood)

    return min(instances, key=key)
