"""Instantiation of an approximate selective matching (paper Section V).

Problem 2 asks for a matching instance with (i) minimal repair distance
Δ(I, C) and (ii), among those, maximal likelihood u(I) = Π_{c∈I} p_c.  The
decision version is NP-complete (Theorem 1: reduction from maximum
independent set), so Algorithm 2 runs a two-step meta-heuristic: greedily
pick the best sampled instance, then improve it with a tabu-guarded
randomized local search driven by roulette-wheel selection and `repair()`.

``exact_instantiate`` solves the problem exactly by enumeration and is used
to validate the heuristic on small networks.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Iterable, Optional, Sequence

from .correspondence import Correspondence
from .feedback import Feedback
from .instances import enumerate_instances
from .network import MatchingNetwork
from .probability import ProbabilisticNetwork
from .repair import greedy_maximalize, repair
from .sampling import symmetric_difference_size

#: Probability floor used inside log-likelihoods so that a sampled zero does
#: not collapse the whole product (the instance may still be forced to keep
#: that correspondence for maximality).
_LIKELIHOOD_FLOOR = 1e-9


def repair_distance(
    instance: Iterable[Correspondence], candidates: Iterable[Correspondence]
) -> int:
    """Δ(I, C) — symmetric difference; equals |C| − |I| whenever I ⊆ C."""
    return symmetric_difference_size(instance, candidates)


def log_likelihood(
    instance: Iterable[Correspondence],
    probabilities: dict[Correspondence, float],
) -> float:
    """log u(I) = Σ log p_c, with probabilities floored at a tiny epsilon."""
    return sum(
        math.log(max(probabilities.get(corr, 0.0), _LIKELIHOOD_FLOOR))
        for corr in instance
    )


def _roulette_wheel(
    rng: random.Random,
    weighted: Sequence[tuple[Correspondence, float]],
) -> Correspondence:
    """Fitness-proportionate selection; uniform when all weights vanish."""
    total = sum(weight for _, weight in weighted)
    if total <= 0.0:
        return weighted[rng.randrange(len(weighted))][0]
    pick = rng.random() * total
    cumulative = 0.0
    for corr, weight in weighted:
        cumulative += weight
        if pick <= cumulative:
            return corr
    return weighted[-1][0]


def instantiate(
    pnet: ProbabilisticNetwork,
    iterations: int = 100,
    use_likelihood: bool = True,
    tabu_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> frozenset[Correspondence]:
    """Algorithm 2: derive one trusted matching from ⟨N, P⟩.

    Parameters
    ----------
    pnet:
        The probabilistic matching network (feedback already folded into P).
    iterations:
        ``k`` — the local-search step bound; also the tabu-queue capacity
        unless ``tabu_size`` overrides it.
    use_likelihood:
        When False the likelihood tie-break is ignored (the "Without
        Likelihood" variant of Fig. 11) and roulette weights are uniform.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    rng = rng or random.Random()
    network = pnet.network
    engine = network.engine
    feedback = pnet.feedback
    probabilities = pnet.probabilities()
    candidates = network.correspondences

    def better(challenger: set[Correspondence], incumbent: set[Correspondence]) -> bool:
        challenger_distance = repair_distance(challenger, candidates)
        incumbent_distance = repair_distance(incumbent, candidates)
        if challenger_distance != incumbent_distance:
            return challenger_distance < incumbent_distance
        if not use_likelihood:
            return False
        return log_likelihood(challenger, probabilities) > log_likelihood(
            incumbent, probabilities
        )

    # ------------------------------------------------------------------
    # Step 1: initialisation — greedy pick among the samples.
    # ------------------------------------------------------------------
    try:
        samples = pnet.samples()
    except TypeError:
        samples = ()
    best: Optional[set[Correspondence]] = None
    for sample in samples:
        sample_set = set(sample)
        if best is None or better(sample_set, best):
            best = sample_set
    if best is None:
        seed = greedy_maximalize(
            feedback.approved, candidates, feedback.disapproved, engine, rng=rng
        )
        best = set(seed)

    # ------------------------------------------------------------------
    # Step 2: optimisation — tabu-guarded randomized local search.
    # ------------------------------------------------------------------
    tabu: deque[Correspondence] = deque(maxlen=tabu_size or max(1, iterations))
    current = set(best)
    for _ in range(iterations):
        pool = [
            corr
            for corr in candidates
            if corr not in feedback.disapproved
            and corr not in current
            and corr not in tabu
        ]
        if not pool:
            break
        if use_likelihood:
            weighted = [(corr, probabilities.get(corr, 0.0)) for corr in pool]
        else:
            weighted = [(corr, 1.0) for corr in pool]
        chosen = _roulette_wheel(rng, weighted)
        tabu.append(chosen)
        current = repair(current, chosen, feedback.approved, engine, rng=rng)
        current = greedy_maximalize(
            current, candidates, feedback.disapproved, engine, rng=rng
        )
        if better(current, best):
            best = set(current)
    return frozenset(best)


def exact_instantiate(
    network: MatchingNetwork,
    probabilities: dict[Correspondence, float],
    feedback: Optional[Feedback] = None,
    use_likelihood: bool = True,
) -> frozenset[Correspondence]:
    """Solve Problem 2 exactly by enumerating Ω (exponential; tests only)."""
    feedback = feedback or Feedback()
    instances = enumerate_instances(network, feedback)
    if not instances:
        raise ValueError("no matching instance exists for this feedback")
    candidates = network.correspondences

    def key(instance: frozenset[Correspondence]) -> tuple[float, float]:
        distance = repair_distance(instance, candidates)
        likelihood = (
            log_likelihood(instance, probabilities) if use_likelihood else 0.0
        )
        return (distance, -likelihood)

    return min(instances, key=key)
