"""Network uncertainty and information gain (paper Section IV).

Network uncertainty is the Shannon entropy of the per-correspondence
inclusion indicators (Equation 3, log base 2 — the base Example 1 implies).
Information gain (Equations 4–5) is the expected entropy drop from asserting
one correspondence; we estimate the conditional entropies from the sample
multiset by partitioning it on membership of the assessed correspondence,
which costs no additional sampling.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .correspondence import Correspondence


def binary_entropy(p: float) -> float:
    """Entropy (bits) of a Bernoulli(p) variable; 0 at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def network_uncertainty(probabilities: Mapping[Correspondence, float]) -> float:
    """H(C, P) = Σ_c H_b(p_c) (Equation 3)."""
    return sum(binary_entropy(p) for p in probabilities.values())


def probabilities_from_samples(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
) -> dict[Correspondence, float]:
    """Per-correspondence sample frequencies over an arbitrary multiset."""
    correspondences = tuple(correspondences)
    if not samples:
        return {corr: 0.0 for corr in correspondences}
    counts = {corr: 0 for corr in correspondences}
    for sample in samples:
        for corr in sample:
            if corr in counts:
                counts[corr] += 1
    total = len(samples)
    return {corr: count / total for corr, count in counts.items()}


def conditional_uncertainty(
    corr: Correspondence,
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    probability: Optional[float] = None,
) -> float:
    """H(C | c, P) (Equation 4), estimated by partitioning the samples.

    The sample multiset is split into the samples containing ``corr``
    (the approval posterior P⁺) and those not containing it (the
    disapproval posterior P⁻); each side's entropy is weighted by p_c.
    """
    correspondences = tuple(correspondences)
    with_corr = [s for s in samples if corr in s]
    without_corr = [s for s in samples if corr not in s]
    if probability is None:
        probability = len(with_corr) / len(samples) if samples else 0.0
    entropy_plus = network_uncertainty(
        probabilities_from_samples(with_corr, correspondences)
    ) if with_corr else 0.0
    entropy_minus = network_uncertainty(
        probabilities_from_samples(without_corr, correspondences)
    ) if without_corr else 0.0
    return probability * entropy_plus + (1.0 - probability) * entropy_minus


def information_gain(
    corr: Correspondence,
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    current_uncertainty: Optional[float] = None,
    probability: Optional[float] = None,
) -> float:
    """IG(c) = H(C, P) − H(C | c, P) (Equation 5), clamped at zero.

    Sampling noise can make the estimate marginally negative; information
    gain is non-negative in expectation, so we clamp.
    """
    correspondences = tuple(correspondences)
    if current_uncertainty is None:
        current_uncertainty = network_uncertainty(
            probabilities_from_samples(samples, correspondences)
        )
    conditional = conditional_uncertainty(
        corr, samples, correspondences, probability=probability
    )
    return max(0.0, current_uncertainty - conditional)


def sample_matrix(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Sequence[Correspondence],
) -> np.ndarray:
    """Boolean membership matrix: rows = samples, columns = correspondences."""
    index = {corr: i for i, corr in enumerate(correspondences)}
    matrix = np.zeros((len(samples), len(correspondences)), dtype=bool)
    for row, sample in enumerate(samples):
        for corr in sample:
            column = index.get(corr)
            if column is not None:
                matrix[row, column] = True
    return matrix


def _entropy_of_frequencies(frequencies: np.ndarray) -> float:
    """Σ H_b(p) over a frequency vector, vectorised."""
    p = np.clip(frequencies, 0.0, 1.0)
    interior = (p > 0.0) & (p < 1.0)
    q = p[interior]
    if q.size == 0:
        return 0.0
    return float(-(q * np.log2(q) + (1.0 - q) * np.log2(1.0 - q)).sum())


def information_gains(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    restrict_to: Optional[Iterable[Correspondence]] = None,
) -> dict[Correspondence, float]:
    """IG for every (or a restricted set of) correspondence, vectorised.

    The membership matrix is built once; each target's conditional entropy
    is two column-mean reductions over the partitioned rows.  Overall cost
    is O(|targets| · |samples| · |C|) simple float operations in numpy,
    which keeps full-corpus reconciliation loops interactive.
    """
    correspondences = tuple(correspondences)
    targets = tuple(restrict_to) if restrict_to is not None else correspondences
    total = len(samples)
    if total == 0:
        return {corr: 0.0 for corr in targets}

    matrix = sample_matrix(samples, correspondences)
    column_of = {corr: i for i, corr in enumerate(correspondences)}
    counts = matrix.sum(axis=0, dtype=np.int64)
    current_uncertainty = _entropy_of_frequencies(counts / total)

    gains: dict[Correspondence, float] = {}
    for target in targets:
        column = column_of.get(target)
        if column is None:
            gains[target] = 0.0
            continue
        mask = matrix[:, column]
        n_with = int(mask.sum())
        n_without = total - n_with
        if n_with == 0 or n_without == 0:
            gains[target] = 0.0
            continue
        counts_with = matrix[mask].sum(axis=0, dtype=np.int64)
        entropy_plus = _entropy_of_frequencies(counts_with / n_with)
        entropy_minus = _entropy_of_frequencies((counts - counts_with) / n_without)
        p = n_with / total
        conditional = p * entropy_plus + (1.0 - p) * entropy_minus
        gains[target] = max(0.0, current_uncertainty - conditional)
    return gains
