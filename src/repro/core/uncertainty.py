"""Network uncertainty and information gain (paper Section IV).

Network uncertainty is the Shannon entropy of the per-correspondence
inclusion indicators (Equation 3, log base 2 — the base Example 1 implies).
Information gain (Equations 4–5) is the expected entropy drop from asserting
one correspondence; we estimate the conditional entropies from the sample
multiset by partitioning it on membership of the assessed correspondence,
which costs no additional sampling.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .correspondence import Correspondence


def binary_entropy(p: float) -> float:
    """Entropy (bits) of a Bernoulli(p) variable; 0 at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def network_uncertainty(probabilities: Mapping[Correspondence, float]) -> float:
    """H(C, P) = Σ_c H_b(p_c) (Equation 3)."""
    return sum(binary_entropy(p) for p in probabilities.values())


def probabilities_from_samples(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
) -> dict[Correspondence, float]:
    """Per-correspondence sample frequencies over an arbitrary multiset."""
    correspondences = tuple(correspondences)
    if not samples:
        return {corr: 0.0 for corr in correspondences}
    counts = {corr: 0 for corr in correspondences}
    for sample in samples:
        for corr in sample:
            if corr in counts:
                counts[corr] += 1
    total = len(samples)
    return {corr: count / total for corr, count in counts.items()}


def conditional_uncertainty(
    corr: Correspondence,
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    probability: Optional[float] = None,
) -> float:
    """H(C | c, P) (Equation 4), estimated by partitioning the samples.

    The sample multiset is split into the samples containing ``corr``
    (the approval posterior P⁺) and those not containing it (the
    disapproval posterior P⁻); each side's entropy is weighted by p_c.
    """
    correspondences = tuple(correspondences)
    with_corr = [s for s in samples if corr in s]
    without_corr = [s for s in samples if corr not in s]
    if probability is None:
        probability = len(with_corr) / len(samples) if samples else 0.0
    entropy_plus = network_uncertainty(
        probabilities_from_samples(with_corr, correspondences)
    ) if with_corr else 0.0
    entropy_minus = network_uncertainty(
        probabilities_from_samples(without_corr, correspondences)
    ) if without_corr else 0.0
    return probability * entropy_plus + (1.0 - probability) * entropy_minus


def information_gain(
    corr: Correspondence,
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    current_uncertainty: Optional[float] = None,
    probability: Optional[float] = None,
) -> float:
    """IG(c) = H(C, P) − H(C | c, P) (Equation 5), clamped at zero.

    Sampling noise can make the estimate marginally negative; information
    gain is non-negative in expectation, so we clamp.
    """
    correspondences = tuple(correspondences)
    if current_uncertainty is None:
        current_uncertainty = network_uncertainty(
            probabilities_from_samples(samples, correspondences)
        )
    conditional = conditional_uncertainty(
        corr, samples, correspondences, probability=probability
    )
    return max(0.0, current_uncertainty - conditional)


def sample_matrix(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Sequence[Correspondence],
) -> np.ndarray:
    """Boolean membership matrix: rows = samples, columns = correspondences."""
    index = {corr: i for i, corr in enumerate(correspondences)}
    matrix = np.zeros((len(samples), len(correspondences)), dtype=bool)
    for row, sample in enumerate(samples):
        for corr in sample:
            column = index.get(corr)
            if column is not None:
                matrix[row, column] = True
    return matrix


def _entropy_of_frequencies(frequencies: np.ndarray) -> float:
    """Σ H_b(p) over a frequency vector, vectorised."""
    p = np.clip(frequencies, 0.0, 1.0)
    interior = (p > 0.0) & (p < 1.0)
    q = p[interior]
    if q.size == 0:
        return 0.0
    return float(-(q * np.log2(q) + (1.0 - q) * np.log2(1.0 - q)).sum())


def _entropy_rows(probabilities: np.ndarray) -> np.ndarray:
    """Row-wise Σ H_b(p): one conditional network entropy per row."""
    q = np.clip(probabilities, 0.0, 1.0)
    interior = (q > 0.0) & (q < 1.0)
    safe = np.where(interior, q, 0.5)
    h = -(safe * np.log2(safe) + (1.0 - safe) * np.log2(1.0 - safe))
    return np.where(interior, h, 0.0).sum(axis=1)


def information_gains(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    restrict_to: Optional[Iterable[Correspondence]] = None,
    matrix: Optional[np.ndarray] = None,
) -> dict[Correspondence, float]:
    """IG for every (or a restricted set of) correspondence, vectorised.

    Pass ``matrix`` (a boolean sample-membership matrix with columns aligned
    to ``correspondences``, e.g. :meth:`SampleStore.matrix`) to skip
    re-densifying the frozenset samples — the selection loop does this on
    every step; ``samples`` is then ignored and may be empty.  All per-target partition counts come from one co-occurrence
    product ``Mᵀ[targets] @ M``: row *t* holds, for every candidate, the
    number of samples containing both *t* and the candidate, which is
    exactly the positive-partition count vector (and the negative partition
    is its complement against the global counts).  Overall cost is one
    (|targets| × |samples|) · (|samples| × |C|) matrix product plus
    elementwise entropy reductions — no Python-level per-target loop.
    """
    correspondences = tuple(correspondences)
    targets = tuple(restrict_to) if restrict_to is not None else correspondences
    if matrix is None:
        matrix = sample_matrix(samples, correspondences)
    total = int(matrix.shape[0])
    gains: dict[Correspondence, float] = {corr: 0.0 for corr in targets}
    if total == 0 or not targets:
        return gains

    column_of = {corr: i for i, corr in enumerate(correspondences)}
    target_columns = [column_of.get(target) for target in targets]
    valid = [p for p, column in enumerate(target_columns) if column is not None]
    if not valid:
        return gains
    columns = np.asarray([target_columns[p] for p in valid], dtype=np.intp)

    dense = np.asarray(matrix, dtype=np.float64)  # no copy when already f64
    counts = dense.sum(axis=0)
    current_uncertainty = _entropy_of_frequencies(counts / total)

    cooccurrence = dense[:, columns].T @ dense
    n_with = counts[columns]
    n_without = total - n_with
    informative = (n_with > 0.0) & (n_without > 0.0)
    n_with_safe = np.where(informative, n_with, 1.0)
    n_without_safe = np.where(informative, n_without, 1.0)
    entropy_plus = _entropy_rows(cooccurrence / n_with_safe[:, None])
    entropy_minus = _entropy_rows(
        (counts[None, :] - cooccurrence) / n_without_safe[:, None]
    )
    p = n_with / total
    conditional = p * entropy_plus + (1.0 - p) * entropy_minus
    gain_values = np.where(
        informative, np.maximum(0.0, current_uncertainty - conditional), 0.0
    )
    for position, value in zip(valid, gain_values.tolist()):
        gains[targets[position]] = value
    return gains
