"""Network uncertainty and information gain (paper Section IV).

Network uncertainty is the Shannon entropy of the per-correspondence
inclusion indicators (Equation 3, log base 2 — the base Example 1 implies).
Information gain (Equations 4–5) is the expected entropy drop from asserting
one correspondence; we estimate the conditional entropies from the sample
multiset by partitioning it on membership of the assessed correspondence,
which costs no additional sampling.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .correspondence import Correspondence


def binary_entropy(p: float) -> float:
    """Entropy (bits) of a Bernoulli(p) variable; 0 at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


#: Memo for :func:`binary_entropy_cached`.  Sampled probabilities are ratios
#: ``k / |Ω*|``, so a session sees only a few hundred distinct values; the
#: memo turns the per-step entropy reduction into dict hits while keeping the
#: scalar ``math.log2`` semantics bit-for-bit (``np.log2`` disagrees with
#: ``math.log2`` in the last ulp for ~0.2% of inputs, which would break
#: trace parity with the scalar reference loop).
_ENTROPY_MEMO: dict[float, float] = {}


def binary_entropy_cached(p: float) -> float:
    """Memoised :func:`binary_entropy` — identical values, amortised cost."""
    h = _ENTROPY_MEMO.get(p)
    if h is None:
        if len(_ENTROPY_MEMO) >= 1 << 16:
            _ENTROPY_MEMO.clear()
        h = binary_entropy(p)
        _ENTROPY_MEMO[p] = h
    return h


def network_uncertainty(probabilities: Mapping[Correspondence, float]) -> float:
    """H(C, P) = Σ_c H_b(p_c) (Equation 3)."""
    return sum(binary_entropy(p) for p in probabilities.values())


def network_uncertainty_vector(probabilities: np.ndarray) -> float:
    """H(C, P) over a probability *vector* (the loop's hot representation).

    Bit-for-bit equal to ``network_uncertainty`` over a mapping with the
    same values in the same order: per-element entropies come from the
    scalar (memoised) ``binary_entropy`` and are accumulated left-to-right,
    exactly like the ``sum`` in the mapping path.
    """
    return sum(map(binary_entropy_cached, probabilities.tolist()))


def probabilities_from_samples(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
) -> dict[Correspondence, float]:
    """Per-correspondence sample frequencies over an arbitrary multiset."""
    correspondences = tuple(correspondences)
    if not samples:
        return {corr: 0.0 for corr in correspondences}
    counts = {corr: 0 for corr in correspondences}
    for sample in samples:
        for corr in sample:
            if corr in counts:
                counts[corr] += 1
    total = len(samples)
    return {corr: count / total for corr, count in counts.items()}


def conditional_uncertainty(
    corr: Correspondence,
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    probability: Optional[float] = None,
) -> float:
    """H(C | c, P) (Equation 4), estimated by partitioning the samples.

    The sample multiset is split into the samples containing ``corr``
    (the approval posterior P⁺) and those not containing it (the
    disapproval posterior P⁻); each side's entropy is weighted by p_c.
    """
    correspondences = tuple(correspondences)
    with_corr = [s for s in samples if corr in s]
    without_corr = [s for s in samples if corr not in s]
    if probability is None:
        probability = len(with_corr) / len(samples) if samples else 0.0
    entropy_plus = network_uncertainty(
        probabilities_from_samples(with_corr, correspondences)
    ) if with_corr else 0.0
    entropy_minus = network_uncertainty(
        probabilities_from_samples(without_corr, correspondences)
    ) if without_corr else 0.0
    return probability * entropy_plus + (1.0 - probability) * entropy_minus


def information_gain(
    corr: Correspondence,
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    current_uncertainty: Optional[float] = None,
    probability: Optional[float] = None,
) -> float:
    """IG(c) = H(C, P) − H(C | c, P) (Equation 5), clamped at zero.

    Sampling noise can make the estimate marginally negative; information
    gain is non-negative in expectation, so we clamp.
    """
    correspondences = tuple(correspondences)
    if current_uncertainty is None:
        current_uncertainty = network_uncertainty(
            probabilities_from_samples(samples, correspondences)
        )
    conditional = conditional_uncertainty(
        corr, samples, correspondences, probability=probability
    )
    return max(0.0, current_uncertainty - conditional)


def sample_matrix(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Sequence[Correspondence],
) -> np.ndarray:
    """Boolean membership matrix: rows = samples, columns = correspondences."""
    index = {corr: i for i, corr in enumerate(correspondences)}
    matrix = np.zeros((len(samples), len(correspondences)), dtype=bool)
    for row, sample in enumerate(samples):
        for corr in sample:
            column = index.get(corr)
            if column is not None:
                matrix[row, column] = True
    return matrix


def _entropy_of_frequencies(frequencies: np.ndarray) -> float:
    """Σ H_b(p) over a frequency vector, vectorised."""
    p = np.clip(frequencies, 0.0, 1.0)
    interior = (p > 0.0) & (p < 1.0)
    q = p[interior]
    if q.size == 0:
        return 0.0
    return float(-(q * np.log2(q) + (1.0 - q) * np.log2(1.0 - q)).sum())


def _entropy_rows(probabilities: np.ndarray) -> np.ndarray:
    """Row-wise Σ H_b(p): one conditional network entropy per row."""
    q = np.clip(probabilities, 0.0, 1.0)
    interior = (q > 0.0) & (q < 1.0)
    safe = np.where(interior, q, 0.5)
    h = -(safe * np.log2(safe) + (1.0 - safe) * np.log2(1.0 - safe))
    return np.where(interior, h, 0.0).sum(axis=1)


#: Cache for :func:`_entropy_table`: denominator → H_b(k/d) lookup vector.
_ENTROPY_TABLES: dict[int, np.ndarray] = {}


def _entropy_table(denominator: int) -> np.ndarray:
    """H_b(k/d) for k = 0..d — sample-frequency entropies by *count*.

    Every probability the sample store produces is a ratio of small
    integers, so the transcendental work collapses to one table per
    distinct denominator (cached across calls) and entropy reductions
    become integer gathers.
    """
    table = _ENTROPY_TABLES.get(denominator)
    if table is None:
        if len(_ENTROPY_TABLES) >= 4096:
            _ENTROPY_TABLES.clear()
        p = np.arange(denominator + 1, dtype=np.float64) / denominator
        interior = p[1:-1]
        table = np.zeros(denominator + 1, dtype=np.float64)
        table[1:-1] = -(
            interior * np.log2(interior)
            + (1.0 - interior) * np.log2(1.0 - interior)
        )
        table.setflags(write=False)
        _ENTROPY_TABLES[denominator] = table
    return table


def _entropy_rows_from_counts(
    counts: np.ndarray, denominators: np.ndarray
) -> np.ndarray:
    """Row-wise Σ H_b(count/denominator) via the per-denominator tables.

    ``counts`` is an integer matrix (one row per target partition),
    ``denominators`` the per-row partition size; rows with a zero
    denominator yield 0 (their partition is empty, hence entropy-free).
    """
    out = np.zeros(counts.shape[0], dtype=np.float64)
    for denominator in np.unique(denominators).tolist():
        if denominator <= 0:
            continue
        rows = np.flatnonzero(denominators == denominator)
        table = _entropy_table(int(denominator))
        out[rows] = table[counts[rows]].sum(axis=1)
    return out


def information_gain_array(
    matrix: np.ndarray,
    columns: np.ndarray,
) -> np.ndarray:
    """Batched IG for the target ``columns`` of a sample-membership matrix.

    This is the array core behind :func:`information_gains` and the
    information-gain selection strategy; both funnel through it so the gain
    floats (and hence argmax tie-breaks) are bit-for-bit identical no matter
    which API computed them.  All per-target partition counts come from one
    co-occurrence product ``Mᵀ[targets] @ M``: row *t* holds, for every
    candidate, the number of samples containing both *t* and the candidate —
    exactly the positive-partition count vector (the negative partition is
    its complement against the global counts).
    """
    total = int(matrix.shape[0])
    if total == 0 or len(columns) == 0:
        return np.zeros(len(columns), dtype=np.float64)
    dense = np.asarray(matrix, dtype=np.float64)  # no copy when already f64
    counts = dense.sum(axis=0)
    counts_int = counts.astype(np.int64)
    current_uncertainty = float(_entropy_table(total)[counts_int].sum())

    # Only *live* columns — neither absent from nor present in every sample —
    # can contribute entropy to either partition (a global count of 0 or
    # |Ω*| stays 0 or partition-size on both sides, and H_b is then 0), so
    # the co-occurrence product and the entropy gathers run on them alone.
    live = np.flatnonzero((counts_int > 0) & (counts_int < total))
    n_with = counts_int[columns]
    n_without = total - n_with
    informative = (n_with > 0) & (n_without > 0)
    if not len(live) or not informative.any():
        return np.zeros(len(columns), dtype=np.float64)

    cooccurrence = (dense[:, columns].T @ dense[:, live]).astype(np.int64)
    entropy_plus = _entropy_rows_from_counts(cooccurrence, n_with)
    entropy_minus = _entropy_rows_from_counts(
        counts_int[live][None, :] - cooccurrence, n_without
    )
    p = counts[columns] / total
    conditional = p * entropy_plus + (1.0 - p) * entropy_minus
    return np.where(
        informative, np.maximum(0.0, current_uncertainty - conditional), 0.0
    )


def information_gains(
    samples: Sequence[frozenset[Correspondence]],
    correspondences: Iterable[Correspondence],
    restrict_to: Optional[Iterable[Correspondence]] = None,
    matrix: Optional[np.ndarray] = None,
) -> dict[Correspondence, float]:
    """IG for every (or a restricted set of) correspondence, vectorised.

    Pass ``matrix`` (a boolean sample-membership matrix with columns aligned
    to ``correspondences``, e.g. :meth:`SampleStore.matrix`) to skip
    re-densifying the frozenset samples — the selection loop does this on
    every step; ``samples`` is then ignored and may be empty.  All per-target partition counts come from one co-occurrence
    product ``Mᵀ[targets] @ M``: row *t* holds, for every candidate, the
    number of samples containing both *t* and the candidate, which is
    exactly the positive-partition count vector (and the negative partition
    is its complement against the global counts).  Overall cost is one
    (|targets| × |samples|) · (|samples| × |C|) matrix product plus
    elementwise entropy reductions — no Python-level per-target loop.
    """
    correspondences = tuple(correspondences)
    targets = tuple(restrict_to) if restrict_to is not None else correspondences
    if matrix is None:
        matrix = sample_matrix(samples, correspondences)
    total = int(matrix.shape[0])
    gains: dict[Correspondence, float] = {corr: 0.0 for corr in targets}
    if total == 0 or not targets:
        return gains

    column_of = {corr: i for i, corr in enumerate(correspondences)}
    target_columns = [column_of.get(target) for target in targets]
    valid = [p for p, column in enumerate(target_columns) if column is not None]
    if not valid:
        return gains
    columns = np.asarray([target_columns[p] for p in valid], dtype=np.intp)
    gain_values = information_gain_array(matrix, columns)
    for position, value in zip(valid, gain_values.tolist()):
        gains[targets[position]] = value
    return gains
