"""User feedback F = ⟨F⁺, F⁻⟩ and the simulated expert oracle.

The paper models reconciliation input as two disjoint, monotonically growing
sets of approved and disapproved correspondences (Section II-B).  Assertions
are assumed to always be correct, so the experiments drive them from the
ground-truth *selective matching* exactly as Section VI-C describes.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional, Sequence

from .correspondence import Correspondence


class Feedback:
    """Immutable-by-convention container for ⟨F⁺, F⁻⟩.

    Mutation goes through :meth:`approve` / :meth:`disapprove`, which enforce
    disjointness and reject contradictory re-assertions.
    """

    def __init__(
        self,
        approved: Iterable[Correspondence] = (),
        disapproved: Iterable[Correspondence] = (),
    ):
        self._approved: set[Correspondence] = set(approved)
        self._disapproved: set[Correspondence] = set(disapproved)
        overlap = self._approved & self._disapproved
        if overlap:
            raise ValueError(
                f"correspondences both approved and disapproved: {sorted(map(str, overlap))}"
            )

    @property
    def approved(self) -> frozenset[Correspondence]:
        """F⁺ — correspondences asserted correct."""
        return frozenset(self._approved)

    @property
    def disapproved(self) -> frozenset[Correspondence]:
        """F⁻ — correspondences asserted incorrect."""
        return frozenset(self._disapproved)

    @property
    def asserted(self) -> frozenset[Correspondence]:
        """F⁺ ∪ F⁻ — everything the expert has looked at."""
        return frozenset(self._approved | self._disapproved)

    @property
    def approved_count(self) -> int:
        """|F⁺| without materialising the frozenset view."""
        return len(self._approved)

    @property
    def disapproved_count(self) -> int:
        """|F⁻| without materialising the frozenset view."""
        return len(self._disapproved)

    def approve(self, corr: Correspondence) -> None:
        """Record ``corr ∈ F⁺``; idempotent, contradictions raise."""
        if corr in self._disapproved:
            raise ValueError(f"{corr} was already disapproved")
        self._approved.add(corr)

    def disapprove(self, corr: Correspondence) -> None:
        """Record ``corr ∈ F⁻``; idempotent, contradictions raise."""
        if corr in self._approved:
            raise ValueError(f"{corr} was already approved")
        self._disapproved.add(corr)

    def record(self, corr: Correspondence, is_correct: bool) -> None:
        """Route an assertion to approve/disapprove."""
        if is_correct:
            self.approve(corr)
        else:
            self.disapprove(corr)

    def retract_approval(self, corr: Correspondence) -> None:
        """Move an approval to F⁻: the one sanctioned contradiction.

        Conflict repair (Section III-A: trust the constraints over the
        answer) may conclude that an *earlier* approval sits on the minority
        side of a violated constraint; retracting it re-files the assertion
        as a disapproval.  F⁺/F⁻ stay disjoint and |F⁺ ∪ F⁻| is unchanged —
        the expert's effort was spent either way.
        """
        if corr not in self._approved:
            raise ValueError(f"{corr} is not approved")
        self._approved.discard(corr)
        self._disapproved.add(corr)

    def is_asserted(self, corr: Correspondence) -> bool:
        return corr in self._approved or corr in self._disapproved

    def copy(self) -> "Feedback":
        return Feedback(self._approved, self._disapproved)

    def effort(self, total_candidates: int) -> float:
        """User effort E = |F⁺ ∪ F⁻| / |C| (paper Section VI-A).

        F⁺ and F⁻ are disjoint by construction, so the union size is the
        sum of the set sizes — no frozenset needs materialising.
        """
        if total_candidates <= 0:
            raise ValueError("total_candidates must be positive")
        return len(self) / total_candidates

    def __len__(self) -> int:
        return len(self._approved) + len(self._disapproved)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self.asserted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Feedback(+{len(self._approved)}, -{len(self._disapproved)})"


class Oracle:
    """An expert simulated from the ground-truth selective matching.

    ``assert_correspondence`` answers exactly what the ground truth says,
    matching the paper's experimental protocol ("user assertions are
    generated using the available selective matching", Section VI-C).
    """

    def __init__(self, selective_matching: Iterable[Correspondence]):
        self._truth: frozenset[Correspondence] = frozenset(selective_matching)
        self.assertions_made = 0

    @property
    def selective_matching(self) -> frozenset[Correspondence]:
        return self._truth

    def assert_correspondence(self, corr: Correspondence) -> bool:
        """True iff ``corr`` belongs to the selective matching."""
        self.assertions_made += 1
        return corr in self._truth

    def answer_into(self, feedback: Feedback, corr: Correspondence) -> bool:
        """Assert ``corr`` and record the verdict into ``feedback``."""
        verdict = self.assert_correspondence(corr)
        feedback.record(corr, verdict)
        return verdict


class NoisyOracle(Oracle):
    """An imperfect expert: answers are wrong with probability ``error_rate``.

    The paper assumes assertions are always correct; its successor work on
    crowdsourced reconciliation drops that assumption.  This oracle lets the
    robustness of the pipeline be studied under answer noise.  Answers are
    memoised so that repeated questions about the same correspondence get
    the same (possibly wrong) verdict, like a real annotator's fixed belief.
    """

    def __init__(
        self,
        selective_matching: Iterable[Correspondence],
        error_rate: float,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(selective_matching)
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must lie in [0, 1]")
        self.error_rate = error_rate
        self.rng = rng or random.Random()
        self._verdicts: dict[Correspondence, bool] = {}

    def assert_correspondence(self, corr: Correspondence) -> bool:
        self.assertions_made += 1
        verdict = self._verdicts.get(corr)
        if verdict is None:
            truth = corr in self.selective_matching
            verdict = (not truth) if self.rng.random() < self.error_rate else truth
            self._verdicts[corr] = verdict
        return verdict

    def get_state(self) -> dict:
        """Answer-stream RNG state, memoised verdicts and question count.

        What the checkpoint layer needs to restore the oracle mid-session:
        re-asking a memoised question returns the identical verdict, and a
        fresh question draws from the exact RNG position the checkpoint
        captured.  ``error_rate`` and the ground truth travel separately.
        """
        return {
            "rng": self.rng.getstate(),
            "verdicts": list(self._verdicts.items()),
            "assertions_made": self.assertions_made,
        }

    def set_state(self, state: dict) -> None:
        """Restore the live state captured by :meth:`get_state`."""
        version, internal, gauss = state["rng"]
        self.rng.setstate((version, tuple(internal), gauss))
        self._verdicts = {corr: bool(v) for corr, v in state["verdicts"]}
        self.assertions_made = int(state["assertions_made"])


class MajorityOracle(Oracle):
    """Aggregates several (noisy) workers by majority vote.

    A minimal stand-in for the crowdsourced-reconciliation setting the
    paper points to as future work: each assertion is answered by every
    worker and the majority verdict is returned (ties break towards
    *disapproval*, the conservative choice for constraint satisfaction).
    ``assertions_made`` counts questions, not worker answers.
    """

    def __init__(self, workers: Sequence[Oracle]):
        if not workers:
            raise ValueError("at least one worker is required")
        truth = workers[0].selective_matching
        super().__init__(truth)
        self.workers = tuple(workers)

    def assert_correspondence(self, corr: Correspondence) -> bool:
        self.assertions_made += 1
        votes = sum(
            1 for worker in self.workers if worker.assert_correspondence(corr)
        )
        return votes * 2 > len(self.workers)
