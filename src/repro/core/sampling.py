"""Non-uniform sampling of matching instances (paper Algorithm 3) and the
view-maintained sample store (Section III-B).

The sampler explores the instance space with a random walk — add a random
correspondence, repair the violations it causes — combined with a simulated
annealing acceptance rule: a proposed instance is accepted with probability
``1 − e^{−Δ}`` where Δ is the symmetric difference to the current instance.
Large jumps are therefore favoured, which lets the walk escape dense regions
of the heavily constrained instance space.

Two notes on fidelity to the paper:

* Definition 1 requires matching instances to be *maximal*; the raw walk
  only guarantees consistency, so every emitted sample is greedily
  maximalised first (a step the paper leaves implicit).
* The paper's view-maintenance equations contain a typo (approval and
  disapproval both "remove instances containing c"); we implement the
  evident intent — approval keeps samples containing c, disapproval keeps
  samples not containing c.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence

from .correspondence import Correspondence
from .feedback import Feedback
from .network import MatchingNetwork
from .repair import greedy_maximalize, repair


def symmetric_difference_size(
    left: Iterable[Correspondence], right: Iterable[Correspondence]
) -> int:
    """Δ(A, B) = |A \\ B| + |B \\ A| (paper Section V-A)."""
    left_set, right_set = set(left), set(right)
    return len(left_set ^ right_set)


class InstanceSampler:
    """Algorithm 3: non-uniform random-walk sampler over matching instances.

    Parameters
    ----------
    network:
        The matching network whose instances are sampled.
    walk_steps:
        ``k`` — the number of add-and-repair random-walk steps per sample.
    rng:
        Source of randomness; pass a seeded :class:`random.Random` for
        reproducible experiments.
    """

    def __init__(
        self,
        network: MatchingNetwork,
        walk_steps: int = 5,
        rng: Optional[random.Random] = None,
        restart_probability: float = 0.15,
    ):
        if walk_steps < 1:
            raise ValueError("walk_steps must be at least 1")
        if not 0.0 <= restart_probability <= 1.0:
            raise ValueError("restart_probability must lie in [0, 1]")
        self.network = network
        self.walk_steps = walk_steps
        self.rng = rng or random.Random()
        self.restart_probability = restart_probability

    def sample(
        self, n_samples: int, feedback: Optional[Feedback] = None
    ) -> list[frozenset[Correspondence]]:
        """Run ``n_samples`` walk iterations and return the *distinct*
        matching instances discovered.

        Algorithm 3 accumulates samples with a set union (Ω* ← Ω* ∪ Iᵢ), so
        the result is a subset of the instance space Ω, in discovery order;
        it may be shorter than ``n_samples``.
        """
        feedback = feedback or Feedback()
        engine = self.network.engine
        candidates = self.network.correspondences
        disapproved = feedback.disapproved
        approved = feedback.approved

        current: set[Correspondence] = set(approved)
        discovered: dict[frozenset[Correspondence], None] = {}
        for _ in range(n_samples):
            # Occasional restart from the feedback core: the constraint
            # structure splits the instance space into regions the local
            # walk crosses only slowly (the annealing acceptance helps but
            # does not guarantee mixing); restarts make every region
            # reachable regardless of the walk's current position.
            if current != approved and self.rng.random() < self.restart_probability:
                current = set(approved)
            for _ in range(self.walk_steps):
                available = [
                    c for c in candidates if c not in disapproved and c not in current
                ]
                if not available:
                    break
                chosen = available[self.rng.randrange(len(available))]
                proposal = repair(current, chosen, approved, engine, rng=self.rng)
                distance = symmetric_difference_size(current, proposal)
                acceptance = 1.0 - math.exp(-distance)
                if self.rng.random() < acceptance:
                    current = proposal
            maximal = greedy_maximalize(
                current, candidates, disapproved, engine, rng=self.rng
            )
            discovered[frozenset(maximal)] = None
        return list(discovered)


class SampleStore:
    """The maintained sample multiset Ω* with pay-as-you-go view maintenance.

    On each assertion the store filters the existing samples instead of
    re-sampling from scratch, topping up from the sampler whenever fewer than
    ``min_samples`` survive.  Ω* is a *set* of discovered instances
    (Algorithm 3 accumulates with set union), so probabilities are fractions
    over distinct instances.  Following Section III-B, if two consecutive
    sampling rounds still leave the store short of ``min_samples``, the
    instance space itself is deemed that small and the store is marked
    exhausted (Ω* = Ω).
    """

    def __init__(
        self,
        network: MatchingNetwork,
        sampler: Optional[InstanceSampler] = None,
        target_samples: int = 500,
        min_samples: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        if target_samples < 1:
            raise ValueError("target_samples must be positive")
        self.network = network
        self.sampler = sampler or InstanceSampler(network, rng=rng)
        self.target_samples = target_samples
        self.min_samples = min_samples if min_samples is not None else target_samples // 2
        self.feedback = Feedback()
        self._samples: list[frozenset[Correspondence]] = []
        self._consecutive_shortfalls = 0
        self._exhausted = False
        self._frequency_cache: Optional[dict[Correspondence, float]] = None
        self.refresh()

    @property
    def samples(self) -> Sequence[frozenset[Correspondence]]:
        """The current sample set Ω* (distinct instances, discovery order)."""
        return tuple(self._samples)

    @property
    def exhausted(self) -> bool:
        """True when the store believes it holds *all* matching instances."""
        return self._exhausted

    def refresh(self) -> None:
        """(Re-)fill the store up to ``target_samples`` for current feedback."""
        if len(self._samples) < self.target_samples and not self._exhausted:
            self._top_up(goal=self.target_samples)
        self._frequency_cache = None

    def _merge(self, fresh: Sequence[frozenset[Correspondence]]) -> int:
        """Union new samples into the store; return how many were new."""
        existing = set(self._samples)
        added = 0
        for sample in fresh:
            if sample not in existing:
                existing.add(sample)
                self._samples.append(sample)
                added += 1
        return added

    def record_assertion(self, corr: Correspondence, approved: bool) -> None:
        """View maintenance for one assertion, then top up if short."""
        self.feedback.record(corr, approved)
        if approved:
            self._samples = [s for s in self._samples if corr in s]
        else:
            self._samples = [s for s in self._samples if corr not in s]
        self._frequency_cache = None
        if self._exhausted:
            # Filtering a complete instance space stays complete: the
            # instances under the stronger feedback are exactly the
            # surviving ones.
            return
        if len(self._samples) < self.min_samples:
            self._top_up(goal=self.target_samples)

    def _top_up(self, goal: int) -> None:
        """Sample towards ``goal`` distinct instances; detect exhaustion.

        Per Section III-B, when two consecutive sampling rounds fail to
        reach ``min_samples`` distinct instances, the instance space itself
        is deemed that small and the store is marked exhausted (Ω* = Ω).
        """
        shortfall_runs = 0
        while len(self._samples) < goal:
            fresh = self.sampler.sample(
                max(goal - len(self._samples), self.min_samples), self.feedback
            )
            self._merge(fresh)
            if len(self._samples) < self.min_samples:
                shortfall_runs += 1
                if shortfall_runs >= 2:
                    self._exhausted = True
                    break
            else:
                break
        self._frequency_cache = None

    def frequencies(self) -> dict[Correspondence, float]:
        """Sample frequency of each candidate: the estimated probabilities.

        Cached between mutations — the reconciliation loop reads the
        distribution several times per assertion.
        """
        if self._frequency_cache is not None:
            return dict(self._frequency_cache)
        total = len(self._samples)
        counts: dict[Correspondence, int] = {
            corr: 0 for corr in self.network.correspondences
        }
        if total:
            for sample in self._samples:
                for corr in sample:
                    counts[corr] += 1
        self._frequency_cache = {
            corr: (count / total if total else 0.0)
            for corr, count in counts.items()
        }
        return dict(self._frequency_cache)

    def __len__(self) -> int:
        return len(self._samples)
