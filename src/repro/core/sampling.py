"""Non-uniform sampling of matching instances (paper Algorithm 3) and the
view-maintained sample store (Section III-B).

The sampler explores the instance space with a random walk — add a random
correspondence, repair the violations it causes — combined with a simulated
annealing acceptance rule: a proposed instance is accepted with probability
``1 − e^{−Δ}`` where Δ is the symmetric difference to the current instance.
Large jumps are therefore favoured, which lets the walk escape dense regions
of the heavily constrained instance space.

Hot-path layout: the walk runs entirely in the constraint engine's bitmask
index space — the current instance is one int, availability is
``allowed & ~current``, the walk step picks a uniform set bit, proposals go
through :func:`~repro.core.repair.repair_mask`, Δ is a popcount of an XOR.
Emissions are *batched*: the walk collects its pre-emission states
(:meth:`InstanceSampler.walk_states`) and a whole refill's worth is
maximalised at once by the priority-wave kernel
:func:`~repro.core.repair.wave_maximalize_batch` (per-emission random
priorities, numpy admission waves) instead of one sequential scan per
instance.  The store keeps Ω* as a list of masks (plus a cached numpy
membership matrix for frequency / information-gain reductions) and converts
to frozensets only at the public ``samples`` boundary.

Two notes on fidelity to the paper:

* Definition 1 requires matching instances to be *maximal*; the raw walk
  only guarantees consistency, so every emitted sample is greedily
  maximalised first (a step the paper leaves implicit).
* The paper's view-maintenance equations contain a typo (approval and
  disapproval both "remove instances containing c"); we implement the
  evident intent — approval keeps samples containing c, disapproval keeps
  samples not containing c.
"""

from __future__ import annotations

import math
import random
from types import MappingProxyType
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .constraints import kth_set_bit
from .correspondence import Correspondence
from .feedback import Feedback
from .network import MatchingNetwork
from .repair import repair_mask, wave_maximalize_batch


def symmetric_difference_size(
    left: Iterable[Correspondence], right: Iterable[Correspondence]
) -> int:
    """Δ(A, B) = |A \\ B| + |B \\ A| (paper Section V-A)."""
    left_set, right_set = set(left), set(right)
    return len(left_set ^ right_set)


class InstanceSampler:
    """Algorithm 3: non-uniform random-walk sampler over matching instances.

    Parameters
    ----------
    network:
        The matching network whose instances are sampled.
    walk_steps:
        ``k`` — the number of add-and-repair random-walk steps per sample.
    rng:
        Source of randomness; pass a seeded :class:`random.Random` for
        reproducible experiments.
    """

    def __init__(
        self,
        network: MatchingNetwork,
        walk_steps: int = 5,
        rng: Optional[random.Random] = None,
        restart_probability: float = 0.15,
        chains: int = 1,
    ):
        if walk_steps < 1:
            raise ValueError("walk_steps must be at least 1")
        if not 0.0 <= restart_probability <= 1.0:
            raise ValueError("restart_probability must lie in [0, 1]")
        if chains < 1:
            raise ValueError("chains must be at least 1")
        self.network = network
        self.walk_steps = walk_steps
        self.rng = rng or random.Random()
        self.restart_probability = restart_probability
        #: How many independent walk chains a refill advances.  ``1`` (the
        #: default) is the pinned single-chain reference stream; larger
        #: values route :meth:`sample_masks` through
        #: :meth:`walk_states_batch`, whose per-chain streams are derived
        #: from ``rng`` per call (so checkpointing ``rng`` captures them).
        self.chains = chains
        # Emission permutations come from a numpy generator (C-level
        # shuffles), seeded off the walk rng so a seeded sampler stays fully
        # deterministic while the two streams remain independent.
        self.np_rng = np.random.default_rng(self.rng.getrandbits(64))

    def get_state(self) -> dict:
        """Both RNG streams' states, as plain Python objects.

        The checkpoint layer (:mod:`repro.durability`) persists this so a
        restored sampler continues the *same* walk and emission streams;
        the configuration knobs travel separately in the checkpoint.
        """
        return {
            "rng": self.rng.getstate(),
            "np_rng": self.np_rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore both RNG streams captured by :meth:`get_state`."""
        version, internal, gauss = state["rng"]
        self.rng.setstate((version, tuple(internal), gauss))
        self.np_rng.bit_generator.state = state["np_rng"]

    def walk_states(
        self, n_samples: int, feedback: Optional[Feedback] = None
    ) -> tuple[list[int], int]:
        """Run the walk and collect the pre-emission states.

        Returns one consistent (not yet maximalised) selection mask per walk
        iteration plus the ``allowed`` mask they were sampled under.  The
        emission itself — maximalising every state — is deliberately
        deferred: the walk only ever continues from its *own* state, never
        from an emitted instance, so a refill can collect the whole batch
        here and maximalise it in one call to
        :func:`~repro.core.repair.wave_maximalize_batch`.
        """
        feedback = feedback or Feedback()
        engine = self.network.engine
        rng = self.rng
        walk_steps = self.walk_steps
        restart_probability = self.restart_probability
        approved = engine.mask_of(feedback.approved)
        allowed = engine.full_mask & ~engine.mask_of(feedback.disapproved)

        current = approved
        states: list[int] = []
        exp = math.exp
        random_float = rng.random
        n = engine.n
        bits = engine.bits
        for _ in range(n_samples):
            # Occasional restart from the feedback core: the constraint
            # structure splits the instance space into regions the local
            # walk crosses only slowly (the annealing acceptance helps but
            # does not guarantee mixing); restarts make every region
            # reachable regardless of the walk's current position.
            if current != approved and random_float() < restart_probability:
                current = approved
            for _ in range(walk_steps):
                avail = allowed & ~current
                if not avail:
                    break
                # Uniform set-bit draw: rejection sampling against the
                # availability mask (it is dense along most of the walk),
                # falling back to an exact k-th-bit scan when unlucky.
                for _ in range(4):
                    index = int(random_float() * n)
                    if avail & bits[index]:
                        break
                else:
                    index = kth_set_bit(avail, rng.randrange(avail.bit_count()))
                proposal = repair_mask(engine, current, index, approved, rng=rng)
                distance = (current ^ proposal).bit_count()
                acceptance = 1.0 - exp(-distance)
                if random_float() < acceptance:
                    current = proposal
            states.append(current)
        return states, allowed

    def spawn_chain_rngs(self, chains: int) -> list[random.Random]:
        """Derive ``chains`` independent walk streams from the sampler rng.

        One 64-bit seed is drawn per chain, in chain order, so the derived
        streams are a pure function of the sampler rng's position: a
        checkpoint of ``rng`` alone replays the exact same chain streams,
        and a parity test can reconstruct chain ``c``'s stream by re-seeding
        ``random.Random`` with the ``c``-th draw.
        """
        return [random.Random(self.rng.getrandbits(64)) for _ in range(chains)]

    def walk_states_batch(
        self,
        n_samples: int,
        feedback: Optional[Feedback] = None,
        chains: Optional[int] = None,
        rngs: Optional[Sequence[random.Random]] = None,
    ) -> tuple[list[list[int]], int]:
        """Advance ``chains`` independent walks in lockstep; collect states.

        The multi-chain counterpart of :meth:`walk_states` (which stays the
        pinned single-chain reference): ``n_samples`` walk iterations are
        split across ``chains`` independent chains (chain ``c`` runs
        ``n_samples // chains`` rounds, the first ``n_samples % chains``
        chains one more) and all chains advance *simultaneously*, one walk
        step per chain per wave, sharing the engine's mask-space layout —
        the batch of pre-emission states then feeds one
        :func:`~repro.core.repair.wave_maximalize_batch` call instead of
        ``chains`` sequential emission scans.

        Each chain owns a :class:`random.Random` stream (``rngs``, or
        streams derived via :meth:`spawn_chain_rngs`; with ``chains=1`` the
        sampler rng itself), and a chain's draws depend only on its own
        stream and state, so the lockstep schedule is bit-for-bit the
        sequential one: ``chains=1`` consumes the sampler rng exactly like
        :meth:`walk_states`, and chain ``c`` of a ``chains=C`` run emits
        exactly the states a single-chain sampler seeded with stream ``c``
        would.  Returns the per-chain state lists plus the shared
        ``allowed`` mask.
        """
        if chains is None:
            chains = len(rngs) if rngs is not None else self.chains
        if chains < 1:
            raise ValueError("chains must be at least 1")
        if rngs is None:
            rngs = [self.rng] if chains == 1 else self.spawn_chain_rngs(chains)
        elif len(rngs) != chains:
            raise ValueError(f"expected {chains} chain rngs, got {len(rngs)}")
        feedback = feedback or Feedback()
        engine = self.network.engine
        walk_steps = self.walk_steps
        restart_probability = self.restart_probability
        approved = engine.mask_of(feedback.approved)
        allowed = engine.full_mask & ~engine.mask_of(feedback.disapproved)
        exp = math.exp
        n = engine.n
        bits = engine.bits
        rounds = [
            n_samples // chains + (1 if c < n_samples % chains else 0)
            for c in range(chains)
        ]
        floats = [rng.random for rng in rngs]
        current = [approved] * chains
        states: list[list[int]] = [[] for _ in range(chains)]
        for round_index in range(rounds[0] if chains else 0):
            active = [c for c in range(chains) if round_index < rounds[c]]
            for c in active:
                if current[c] != approved and floats[c]() < restart_probability:
                    current[c] = approved
            live = active
            for _ in range(walk_steps):
                advancing: list[int] = []
                for c in live:
                    cur = current[c]
                    avail = allowed & ~cur
                    if not avail:
                        # This chain's availability is spent for the round;
                        # it rejoins at the next restart draw.
                        continue
                    random_float = floats[c]
                    rng = rngs[c]
                    for _ in range(4):
                        index = int(random_float() * n)
                        if avail & bits[index]:
                            break
                    else:
                        index = kth_set_bit(
                            avail, rng.randrange(avail.bit_count())
                        )
                    proposal = repair_mask(engine, cur, index, approved, rng=rng)
                    distance = (cur ^ proposal).bit_count()
                    if random_float() < 1.0 - exp(-distance):
                        current[c] = proposal
                    advancing.append(c)
                live = advancing
                if not live:
                    break
            for c in active:
                states[c].append(current[c])
        return states, allowed

    def sample_masks_batch(
        self,
        n_samples: int,
        feedback: Optional[Feedback] = None,
        chains: Optional[int] = None,
    ) -> list[int]:
        """Multi-chain :meth:`sample_masks`: C lockstep chains, one emission.

        The chains' pre-emission states are concatenated chain-major and the
        whole batch is maximalised by a single priority-wave call (one
        ``np_rng`` priority matrix for the refill, exactly like the
        single-chain path), then deduplicated in that order.  With
        ``chains=1`` this is bit-for-bit :meth:`sample_masks`.
        """
        states, allowed = self.walk_states_batch(
            n_samples, feedback, chains=chains
        )
        flat = [state for chain_states in states for state in chain_states]
        discovered: dict[int, None] = {}
        for maximal in wave_maximalize_batch(
            self.network.engine, flat, allowed, np_rng=self.np_rng
        ):
            discovered[maximal] = None
        return list(discovered)

    def sample_masks(
        self, n_samples: int, feedback: Optional[Feedback] = None
    ) -> list[int]:
        """The mask-space hot kernel behind :meth:`sample`.

        Runs ``n_samples`` walk iterations and returns the *distinct*
        matching instances discovered, as bitmasks in discovery order.  The
        whole batch of walk states is maximalised at once by the priority-
        wave kernel (uniform per-emission priorities from ``np_rng`` — the
        same emission distribution as the historical per-instance
        permutation scan, decided in a few numpy waves).  A sampler built
        with ``chains > 1`` collects the states from that many lockstep
        chains (:meth:`walk_states_batch`) instead of one sequential walk.
        """
        if self.chains > 1:
            return self.sample_masks_batch(n_samples, feedback)
        states, allowed = self.walk_states(n_samples, feedback)
        discovered: dict[int, None] = {}
        for maximal in wave_maximalize_batch(
            self.network.engine, states, allowed, np_rng=self.np_rng
        ):
            discovered[maximal] = None
        return list(discovered)

    def sample(
        self, n_samples: int, feedback: Optional[Feedback] = None
    ) -> list[frozenset[Correspondence]]:
        """Run ``n_samples`` walk iterations and return the *distinct*
        matching instances discovered.

        Algorithm 3 accumulates samples with a set union (Ω* ← Ω* ∪ Iᵢ), so
        the result is a subset of the instance space Ω, in discovery order;
        it may be shorter than ``n_samples``.  Approved correspondences
        outside the network's candidate set cannot be represented in the
        mask space; they are restored into every emitted instance here, at
        the frozenset boundary.
        """
        engine = self.network.engine
        corrs_of = engine.corrs_of
        masks = self.sample_masks(n_samples, feedback)
        extra = (
            engine.outside_candidates(feedback.approved)
            if feedback is not None
            else frozenset()
        )
        if extra:
            return [corrs_of(mask) | extra for mask in masks]
        return [corrs_of(mask) for mask in masks]


class SampleStore:
    """The maintained sample multiset Ω* with pay-as-you-go view maintenance.

    On each assertion the store filters the existing samples instead of
    re-sampling from scratch, topping up from the sampler whenever fewer than
    ``min_samples`` survive.  Ω* is a *set* of discovered instances
    (Algorithm 3 accumulates with set union), so probabilities are fractions
    over distinct instances.  Refills aim for ``target_samples`` distinct
    instances and stop early only when the sampler saturates (two
    consecutive full-strength rounds finding nothing new); saturation below
    ``min_samples`` marks the store exhausted (Ω* = Ω) per Section III-B.

    Samples are stored as engine bitmasks; ``samples`` converts to
    frozensets (cached), ``matrix`` exposes the boolean membership matrix
    that the frequency and information-gain reductions run on.

    **The Ω*-conditioning invariant.**  The numpy caches (membership matrix,
    float view, counts, probability vector) are *views over Ω**: row *i*
    always describes ``_sample_masks[i]``, in order.  An assertion
    *conditions* Ω* on the asserted bit — it partitions the sample set into
    the instances containing the correspondence and those not containing it,
    and keeps the side consistent with the verdict.  The caches are
    maintained by applying the *same* partition to their rows (and appending
    rows for top-up discoveries) rather than being torn down and re-derived,
    so ``record_assertion`` costs one boolean row-filter instead of a full
    rebuild; ``version`` increments on every mutation so downstream caches
    (e.g. the probabilistic network's folded vector) can validate cheaply.

    **The wave/priority invariant.**  Every instance a refill adds to Ω* is
    emitted by the batched priority-wave maximaliser
    (:func:`~repro.core.repair.wave_maximalize_batch`): each walk state
    draws iid uniform priorities over the conflicted availability and is
    extended to the unique maximal instance the sequential greedy scan in
    increasing-priority order would build.  Because that order is a uniform
    permutation of the availability, the per-emission instance distribution
    is exactly the historical per-instance permutation scan's, so Ω* stays
    a valid Ω* sample per Section III-B — only the random stream (one
    priority matrix per refill instead of one permutation per emission) and
    the wall-clock change.  Every emission is maximal and violation-free by
    construction; the property suite pins both.
    """

    def __init__(
        self,
        network: MatchingNetwork,
        sampler: Optional[InstanceSampler] = None,
        target_samples: int = 500,
        min_samples: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        if target_samples < 1:
            raise ValueError("target_samples must be positive")
        self.network = network
        self.sampler = sampler or InstanceSampler(network, rng=rng)
        self.target_samples = target_samples
        self.min_samples = min_samples if min_samples is not None else target_samples // 2
        self.feedback = Feedback()
        self._sample_masks: list[int] = []
        self._sample_set: set[int] = set()
        self._exhausted = False
        self.version = 0
        self._samples_cache: Optional[tuple[frozenset[Correspondence], ...]] = None
        self._matrix_cache: Optional[np.ndarray] = None
        self._matrix_float_cache: Optional[np.ndarray] = None
        self._counts_cache: Optional[np.ndarray] = None
        self._prob_vector_cache: Optional[np.ndarray] = None
        self._frequency_cache: Optional[Mapping[Correspondence, float]] = None
        self.refresh()

    def get_state(self) -> dict:
        """The store's persistent state: Ω* masks, feedback, flags.

        Everything else the store holds (membership matrices, counts,
        frequency views) is derived from these and rebuilt lazily after
        :meth:`from_state`; the sampler's RNG streams travel via
        :meth:`InstanceSampler.get_state`.
        """
        return {
            "sample_masks": list(self._sample_masks),
            "approved": sorted(self.feedback.approved),
            "disapproved": sorted(self.feedback.disapproved),
            "exhausted": self._exhausted,
            "version": self.version,
            "target_samples": self.target_samples,
            "min_samples": self.min_samples,
        }

    @classmethod
    def from_state(
        cls,
        network: MatchingNetwork,
        sampler: InstanceSampler,
        state: dict,
    ) -> "SampleStore":
        """Rebuild a store from :meth:`get_state` without re-sampling.

        The normal constructor refills the store (consuming sampler RNG);
        a restore must instead adopt the checkpointed Ω* verbatim so the
        RNG streams stay exactly where the checkpoint left them.
        """
        store = cls.__new__(cls)
        store.network = network
        store.sampler = sampler
        store.target_samples = state["target_samples"]
        store.min_samples = state["min_samples"]
        store.feedback = Feedback(state["approved"], state["disapproved"])
        store._sample_masks = list(state["sample_masks"])
        store._sample_set = set(store._sample_masks)
        store._exhausted = bool(state["exhausted"])
        store.version = int(state["version"])
        store._samples_cache = None
        store._matrix_cache = None
        store._matrix_float_cache = None
        store._counts_cache = None
        store._prob_vector_cache = None
        store._frequency_cache = None
        return store

    @property
    def samples(self) -> Sequence[frozenset[Correspondence]]:
        """The current sample set Ω* (distinct instances, discovery order).

        Approved correspondences outside the candidate set are restored into
        every instance here (the mask space cannot represent them).
        """
        if self._samples_cache is None:
            engine = self.network.engine
            corrs_of = engine.corrs_of
            extra = engine.outside_candidates(self.feedback.approved)
            if extra:
                self._samples_cache = tuple(
                    corrs_of(mask) | extra for mask in self._sample_masks
                )
            else:
                self._samples_cache = tuple(
                    corrs_of(mask) for mask in self._sample_masks
                )
        return self._samples_cache

    @property
    def sample_masks(self) -> Sequence[int]:
        """Ω* as engine bitmasks (discovery order) — the kernel-side view."""
        return tuple(self._sample_masks)

    @property
    def exhausted(self) -> bool:
        """True when the store believes it holds *all* matching instances."""
        return self._exhausted

    def refresh(self) -> None:
        """(Re-)fill the store up to ``target_samples`` for current feedback."""
        if len(self._sample_masks) < self.target_samples and not self._exhausted:
            self._top_up(goal=self.target_samples)
        self._invalidate()

    def _invalidate(self) -> None:
        self.version += 1
        self._samples_cache = None
        self._matrix_cache = None
        self._matrix_float_cache = None
        self._counts_cache = None
        self._prob_vector_cache = None
        self._frequency_cache = None

    def _invalidate_derived(self) -> None:
        """Drop the summaries re-derived from the (maintained) matrix."""
        self.version += 1
        self._samples_cache = None
        self._counts_cache = None
        self._prob_vector_cache = None
        self._frequency_cache = None

    def _rows_for(self, masks: Sequence[int]) -> np.ndarray:
        """Boolean membership rows for the given sample masks (the engine's
        batched mask decode, shared with the wave maximaliser)."""
        return self.network.engine.selection_matrix(masks)

    def _condition_caches(self, index: int, approved: bool) -> None:
        """Apply the Ω*-partition of one assertion to the cached matrices.

        Keeps the matrix rows (and the float view) aligned with the filtered
        ``_sample_masks`` — the view-maintenance counterpart of the mask
        filter in :meth:`record_assertion`.
        """
        matrix = self._matrix_cache
        if matrix is None:
            self._matrix_float_cache = None
            return
        column = matrix[:, index]
        keep = column if approved else ~column
        if keep.all():
            return
        matrix = matrix[keep]
        matrix.setflags(write=False)
        self._matrix_cache = matrix
        fmatrix = self._matrix_float_cache
        if fmatrix is not None:
            fmatrix = fmatrix[keep]
            fmatrix.setflags(write=False)
            self._matrix_float_cache = fmatrix

    def _append_cached_rows(self, start: int) -> None:
        """Append membership rows for masks discovered by a top-up."""
        matrix = self._matrix_cache
        if matrix is None or start >= len(self._sample_masks):
            return
        fresh = self._rows_for(self._sample_masks[start:])
        matrix = np.vstack((matrix, fresh))
        matrix.setflags(write=False)
        self._matrix_cache = matrix
        fmatrix = self._matrix_float_cache
        if fmatrix is not None:
            fmatrix = np.vstack((fmatrix, fresh.astype(np.float64)))
            fmatrix.setflags(write=False)
            self._matrix_float_cache = fmatrix

    def _merge(self, fresh: Sequence[int]) -> int:
        """Union new sample masks into the store; return how many were new."""
        existing = self._sample_set
        samples = self._sample_masks
        added = 0
        for mask in fresh:
            if mask not in existing:
                existing.add(mask)
                samples.append(mask)
                added += 1
        return added

    def record_assertion(self, corr: Correspondence, approved: bool) -> None:
        """Condition Ω* on one assertion, then top up only the deficit.

        Per the Ω*-conditioning invariant (class docstring), the cached
        matrices are partitioned on the asserted bit alongside the masks —
        an approval keeps the rows containing the correspondence, a
        disapproval the rows without it — so no cache is re-derived from
        scratch.
        """
        self.feedback.record(corr, approved)
        engine = self.network.engine
        index = engine.index_of.get(corr)
        dropped = 0
        if index is not None:
            bit = engine.bits[index]
            if approved:
                survivors = [m for m in self._sample_masks if m & bit]
            else:
                survivors = [m for m in self._sample_masks if not (m & bit)]
            dropped = len(self._sample_masks) - len(survivors)
            if dropped:
                self._sample_masks = survivors
                self._sample_set = set(survivors)
            self._condition_caches(index, approved)
        # else: a non-candidate participates in no violation, so approval
        # keeps every sample (it is restored at the frozenset boundary) and
        # disapproval removes nothing — no filtering either way.
        self._invalidate_derived()
        if self._exhausted:
            if approved or not dropped:
                # Approval-conditioning is exact: Ω(F⁺∪{c}, F⁻) is precisely
                # the surviving side of the partition, so a complete store
                # stays complete.
                return
            # Disapproval is not: maximality is judged modulo F⁻, so
            # dropping the instances containing c can expose *newly maximal*
            # instances the filtered view has never seen.  The store is no
            # longer provably complete — resume sampling.
            self._exhausted = False
        if len(self._sample_masks) < self.min_samples:
            self._top_up(goal=self.target_samples)

    def retract_approval(self, corr: Correspondence, refill: bool = True) -> None:
        """Re-condition Ω* when conflict repair moves ``corr`` to F⁻.

        Approval-conditioning kept exactly the samples containing ``corr``;
        once the constraints prove the approval wrong, those samples are the
        invalid side of the partition — drop them (the same row filter as a
        disapproval), clear any completeness claim (instances without
        ``corr`` were systematically excluded, so Ω* is no longer provably
        Ω) and top the store back up under the corrected feedback.

        ``refill=False`` skips that top-up.  Conflict repair retracts and
        then immediately records a further assertion, which conditions the
        store again and refills it under the *final* feedback — refilling
        per retraction would pay a full walk/emission pass only to discard
        much of it one call later.  Callers that skip the refill must end
        their feedback transaction with a mutation that restores it (every
        ``record_assertion`` does).
        """
        self.feedback.retract_approval(corr)
        engine = self.network.engine
        index = engine.index_of.get(corr)
        if index is not None:
            bit = engine.bits[index]
            survivors = [m for m in self._sample_masks if not (m & bit)]
            if len(survivors) != len(self._sample_masks):
                self._sample_masks = survivors
                self._sample_set = set(survivors)
            self._condition_caches(index, approved=False)
        self._invalidate_derived()
        self._exhausted = False
        if refill and len(self._sample_masks) < self.min_samples:
            self._top_up(goal=self.target_samples)

    def _top_up(self, goal: int) -> None:
        """Sample towards ``goal`` distinct instances; detect exhaustion.

        Keeps invoking the sampler until the store holds ``goal`` distinct
        instances or the sampler *saturates* — two consecutive full-strength
        rounds contributing nothing new.  A round normally runs just enough
        walk iterations to cover the shortfall; after any fruitless round
        the next probe escalates to ``goal`` iterations, so saturation is
        only ever concluded from full-strength evidence.

        Saturation below ``min_samples`` additionally marks the store
        exhausted (Ω* = Ω, Section III-B: the instance space itself is
        deemed that small), which disables future top-ups.  Saturating
        *above* the minimum merely ends this refill: the walk may simply be
        mixing poorly, so later feedback still triggers fresh attempts
        rather than freezing probabilities on a partial Ω* forever.
        """
        start = len(self._sample_masks)
        fruitless_full_rounds = 0
        escalate = False
        while len(self._sample_masks) < goal:
            budget = max(goal - len(self._sample_masks), self.min_samples)
            if escalate:
                budget = max(budget, goal)
            full_strength = budget >= goal
            fresh = self.sampler.sample_masks(budget, self.feedback)
            if self._merge(fresh):
                fruitless_full_rounds = 0
                escalate = False
            else:
                escalate = True
                if full_strength:
                    fruitless_full_rounds += 1
                    if fruitless_full_rounds >= 2:
                        if len(self._sample_masks) < self.min_samples:
                            self._exhausted = True
                        break
        self._append_cached_rows(start)
        self._invalidate_derived()

    def matrix(self) -> np.ndarray:
        """Boolean membership matrix: rows = samples, columns = candidates.

        Cached between mutations; the information-gain ranking consumes it
        directly instead of re-densifying frozensets per selection step.
        """
        if self._matrix_cache is None:
            matrix = self._rows_for(self._sample_masks)
            # The cached array is shared with callers; freeze it so what-if
            # mutations cannot silently corrupt frequencies and gains.
            matrix.setflags(write=False)
            self._matrix_cache = matrix
        return self._matrix_cache

    def matrix_float(self) -> np.ndarray:
        """The membership matrix as float64 — the dtype the vectorised
        information-gain reductions consume, cached so the per-assertion
        selection loop does not re-materialise an S×|C| array per call."""
        if self._matrix_float_cache is None:
            matrix = self.matrix().astype(np.float64)
            matrix.setflags(write=False)
            self._matrix_float_cache = matrix
        return self._matrix_float_cache

    def counts(self) -> np.ndarray:
        """Per-candidate sample counts over Ω* (int64, frozen, cached)."""
        if self._counts_cache is None:
            counts = self.matrix().sum(axis=0, dtype=np.int64)
            counts.setflags(write=False)
            self._counts_cache = counts
        return self._counts_cache

    def probability_vector(self) -> np.ndarray:
        """Sample frequencies as a float64 vector over the engine's candidate
        index — the representation the reconciliation loop consumes.

        Values are exactly ``count / |Ω*|`` (bit-for-bit what the
        ``frequencies`` mapping holds); the dict view is materialised from
        this vector only at module boundaries.
        """
        if self._prob_vector_cache is None:
            total = len(self._sample_masks)
            if total:
                vector = self.counts() / float(total)
            else:
                vector = np.zeros(self.network.engine.n, dtype=np.float64)
            vector.setflags(write=False)
            self._prob_vector_cache = vector
        return self._prob_vector_cache

    def frequencies(self) -> Mapping[Correspondence, float]:
        """Sample frequency of each candidate: the estimated probabilities.

        Returns a cached *immutable* mapping (rebuilt only after mutations),
        so reconciliation loops that read the distribution several times per
        assertion pay O(1) per read instead of an O(|C|) dict copy.  Callers
        that need to mutate must copy explicitly (``dict(frequencies)``).
        """
        if self._frequency_cache is None:
            self._frequency_cache = MappingProxyType(
                dict(
                    zip(
                        self.network.correspondences,
                        self.probability_vector().tolist(),
                    )
                )
            )
        return self._frequency_cache

    def __len__(self) -> int:
        return len(self._sample_masks)
