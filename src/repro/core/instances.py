"""Matching instances (Definition 1) and exact enumeration of Ω(F⁺, F⁻).

A matching instance is a subset of the candidates that (i) satisfies all
integrity constraints, (ii) contains F⁺ and avoids F⁻, and (iii) is maximal:
no further candidate outside F⁻ can be added without breaking a constraint.

Exact enumeration is exponential in the worst case (the paper resorts to
sampling for that reason), but it is required by the K-L study of Fig. 7 and
invaluable for testing, so we implement a pruned backtracking enumerator that
only branches over *contested* correspondences — those that participate in a
violation which user feedback has not already neutralised.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .correspondence import Correspondence
from .feedback import Feedback
from .network import MatchingNetwork


class InconsistentFeedbackError(ValueError):
    """Raised when F⁺ itself violates the integrity constraints."""


def is_matching_instance(
    selection: Iterable[Correspondence],
    network: MatchingNetwork,
    feedback: Optional[Feedback] = None,
) -> bool:
    """Check Definition 1 directly: consistent, feedback-respecting, maximal."""
    feedback = feedback or Feedback()
    selected = frozenset(selection)
    if not feedback.approved <= selected:
        return False
    if selected & feedback.disapproved:
        return False
    if not selected <= frozenset(network.correspondences):
        return False
    if not network.engine.is_consistent(selected):
        return False
    return network.engine.is_maximal(selected, excluded=feedback.disapproved)


def _partition_candidates(
    network: MatchingNetwork, feedback: Feedback
) -> tuple[int, list[int]]:
    """Split candidates into an always-included ``base`` mask and
    ``contested`` indices.

    A candidate outside F⁻ is *unconflicted* when every violation it appears
    in contains some F⁻ member (and hence can never be activated); by
    maximality every matching instance contains it.  Only the remaining
    contested candidates need branching.
    """
    engine = network.engine
    disapproved = engine.mask_of(feedback.disapproved)
    approved = engine.mask_of(feedback.approved)
    base = approved
    contested: list[int] = []
    asserted = approved | disapproved
    bits = engine.bits
    for index in range(engine.n):
        if bits[index] & asserted:
            continue
        if engine.mask_has_live_violation(index, disapproved):
            contested.append(index)
        else:
            base |= bits[index]
    return base, contested


def enumerate_instances(
    network: MatchingNetwork,
    feedback: Optional[Feedback] = None,
    limit: Optional[int] = None,
) -> tuple[frozenset[Correspondence], ...]:
    """All matching instances Ω(F⁺, F⁻), i.e. every maximal consistent set.

    ``limit`` caps the number of instances returned (useful as a guard on
    networks that turn out to have more structure than expected).  Raises
    :class:`InconsistentFeedbackError` when F⁺ is itself inconsistent.

    The pruned backtracking runs in the engine's bitmask index space — a
    branch is one integer, consistency of a branch extension is
    ``mask_can_add`` — and converts to frozensets only when emitting.
    """
    feedback = feedback or Feedback()
    engine = network.engine
    if not engine.mask_is_consistent(engine.mask_of(feedback.approved)):
        raise InconsistentFeedbackError(
            "the approved correspondences violate the integrity constraints"
        )
    base, contested = _partition_candidates(network, feedback)
    if not engine.mask_is_consistent(base):
        # F⁺ conflicts with unconflicted candidates only if F⁺ members are
        # themselves part of the violation; surface that as inconsistency.
        raise InconsistentFeedbackError(
            "the approved correspondences conflict with always-included candidates"
        )

    instances: list[frozenset[Correspondence]] = []
    n_contested = len(contested)
    bits = engine.bits
    mask_can_add = engine.mask_can_add
    corrs_of = engine.corrs_of

    def leaf_is_maximal(selection: int) -> bool:
        for index in contested:
            if selection & bits[index]:
                continue
            if mask_can_add(selection, index):
                return False
        return True

    def backtrack(position: int, selection: int) -> bool:
        """Return False when the enumeration limit was hit."""
        if limit is not None and len(instances) >= limit:
            return False
        if position == n_contested:
            if leaf_is_maximal(selection):
                instances.append(corrs_of(selection))
            return True
        index = contested[position]
        if mask_can_add(selection, index):
            if not backtrack(position + 1, selection | bits[index]):
                return False
        return backtrack(position + 1, selection)

    backtrack(0, base)
    # Approved correspondences outside the compiled candidate set cannot be
    # represented in the mask space; restore them into every instance at the
    # frozenset boundary (they participate in no violation).
    extra = engine.outside_candidates(feedback.approved)
    if extra:
        return tuple(instance | extra for instance in instances)
    return tuple(instances)


def count_instances(
    network: MatchingNetwork, feedback: Optional[Feedback] = None
) -> int:
    """|Ω(F⁺, F⁻)| via exact enumeration."""
    return len(enumerate_instances(network, feedback))


def exact_probabilities(
    network: MatchingNetwork, feedback: Optional[Feedback] = None
) -> dict[Correspondence, float]:
    """Equation 1: p_c = |{I ∈ Ω : c ∈ I}| / |Ω| by full enumeration."""
    instances = enumerate_instances(network, feedback)
    if not instances:
        raise InconsistentFeedbackError("no matching instance exists")
    total = len(instances)
    counts: dict[Correspondence, int] = {c: 0 for c in network.correspondences}
    for instance in instances:
        for corr in instance:
            counts[corr] += 1
    return {corr: count / total for corr, count in counts.items()}


def iter_consistent_subsets(
    network: MatchingNetwork,
    feedback: Optional[Feedback] = None,
) -> Iterator[frozenset[Correspondence]]:
    """Yield every consistent (not necessarily maximal) feedback-respecting set.

    Exponential; intended for tests on tiny networks.
    """
    feedback = feedback or Feedback()
    engine = network.engine
    free = [
        corr
        for corr in network.correspondences
        if corr not in feedback.approved and corr not in feedback.disapproved
    ]

    def backtrack(index: int, selection: set[Correspondence]) -> Iterator[frozenset[Correspondence]]:
        if index == len(free):
            yield frozenset(selection)
            return
        corr = free[index]
        yield from backtrack(index + 1, selection)
        if engine.can_add(selection, corr):
            selection.add(corr)
            yield from backtrack(index + 1, selection)
            selection.remove(corr)

    base = set(feedback.approved)
    if engine.is_consistent(base):
        yield from backtrack(0, base)
