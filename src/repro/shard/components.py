"""Violation-graph connected components and shard planning.

The constraint structure of a matching network factorises over the
connected components of its *violation graph* — the graph whose vertices
are candidate correspondences and whose (hyper)edges are the engine's
minimal violations.  Two candidates in different components never share a
constraint, so the instance space is a product space: a maximal
consistent selection of the whole network is exactly one maximal
consistent selection per component (plus every violation-free candidate,
which belongs to all instances).  That factorisation is what makes
shard-local probability estimates *exact* rather than approximate — the
differential suite in ``tests/test_shard_equivalence.py`` pins it.

This module computes the components in the engine's int-bitmask index
space and packs them into a deterministic :class:`ShardPlan`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from ..core.constraints import ConstraintEngine, mask_indices
from ..core.network import MatchingNetwork

__all__ = [
    "ShardPlan",
    "shard_plan",
    "shard_plan_delta",
    "violation_components",
]


def violation_components(engine: ConstraintEngine) -> list[int]:
    """Connected components of the violation graph, as candidate bitmasks.

    Every minimal violation connects all its members, so the components
    are the transitive closure of mask overlap: each returned mask is a
    maximal union of violation masks reachable from one another through
    shared candidates.  Violation-free candidates belong to *no*
    component (they are the plan's ``free`` set).  The result is sorted
    by lowest set bit, i.e. by each component's smallest candidate index,
    so the decomposition is deterministic for a given engine.
    """
    components: list[int] = []
    for vmask in engine.violation_masks:
        merged = vmask
        disjoint: list[int] = []
        for component in components:
            if component & merged:
                merged |= component
            else:
                disjoint.append(component)
        disjoint.append(merged)
        components = disjoint
    components.sort(key=lambda mask: mask & -mask)
    return components


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the candidate index space.

    ``shards`` holds one tuple of ascending global engine indices per
    shard — each shard is a union of whole violation-graph components, so
    the product-space factorisation holds shard-by-shard.  ``free`` holds
    the violation-free candidate indices: they participate in no
    constraint, appear in every matching instance, and therefore need no
    shard (their probability is exactly 1 unless disapproved).
    """

    shards: tuple[tuple[int, ...], ...]
    free: tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def sizes(self) -> tuple[int, ...]:
        """Per-shard candidate counts (diagnostics and balance checks)."""
        return tuple(len(indices) for indices in self.shards)


def shard_plan(
    network: MatchingNetwork, max_shards: Optional[int] = None
) -> ShardPlan:
    """Plan the shard decomposition of ``network``.

    With ``max_shards=None`` every violation-graph component becomes its
    own shard — the finest exact decomposition.  A ``max_shards`` cap
    packs components into at most that many shards with a deterministic
    greedy bin-packing (largest component first into the currently
    smallest shard; ties broken on smallest candidate index and lowest
    shard slot), trading per-shard enumerability for fewer engines.
    Either way every shard is a union of whole components, so exactness
    is preserved.
    """
    if max_shards is not None and max_shards < 1:
        raise ValueError("max_shards must be at least 1")
    engine = network.engine
    components = violation_components(engine)
    free = tuple(mask_indices(engine.violation_free_mask))
    if max_shards is None or len(components) <= max_shards:
        groups = components
    else:
        # Largest-first greedy packing into a min-heap of (size, slot).
        order = sorted(
            components, key=lambda mask: (-mask.bit_count(), mask & -mask)
        )
        heap = [(0, slot) for slot in range(max_shards)]
        heapq.heapify(heap)
        bins = [0] * max_shards
        for mask in order:
            size, slot = heapq.heappop(heap)
            bins[slot] |= mask
            heapq.heappush(heap, (size + mask.bit_count(), slot))
        groups = [mask for mask in bins if mask]
        groups.sort(key=lambda mask: mask & -mask)
    shards = tuple(tuple(mask_indices(mask)) for mask in groups)
    return ShardPlan(shards=shards, free=free)


def shard_plan_delta(
    old_plan: ShardPlan,
    result,
    max_shards: Optional[int] = None,
) -> tuple[ShardPlan, dict[int, int]]:
    """Re-plan after a :class:`~repro.core.delta.DeltaResult` and say
    which shards carried over.

    Returns ``(plan, carried)`` where ``plan`` is exactly
    ``shard_plan(result.network, max_shards)`` — the authoritative
    decomposition that :meth:`ShardedSampleStore.from_state` will
    recompute on restore, so the delta path must agree with it bit for
    bit — and ``carried`` maps *new* shard position → *old* shard
    position for every shard whose candidate set is an untouched image
    of an old shard.

    A new shard carries over iff its index tuple equals an old shard's
    indices remapped through ``result.index_map``.  That equality alone
    implies the shard is untouched: every *new* violation involves an
    added candidate (the delta locality contract), added indices appear
    in no remapped old shard, and a new violation intersecting the shard
    would have pulled the added index into its component — changing the
    tuple.  Likewise all the old shard's members survived (the remap is
    total on it), so no violation inside it lost a member.  The carried
    shard's violation structure, sample space and conditioning are
    therefore *identical*, and the store layer may keep its live
    engine + store + RNG objects verbatim.
    """
    plan = shard_plan(result.network, max_shards)
    index_map = result.index_map
    carried_lookup: dict[tuple[int, ...], int] = {}
    for old_position, indices in enumerate(old_plan.shards):
        remapped = tuple(
            index_map[index] for index in indices if index in index_map
        )
        if len(remapped) == len(indices):
            carried_lookup[remapped] = old_position
    carried = {
        new_position: carried_lookup[indices]
        for new_position, indices in enumerate(plan.shards)
        if indices in carried_lookup
    }
    return plan, carried
