"""Sharded probability estimator — Equation 2 over shard-local pools.

:class:`ShardedEstimator` is the drop-in counterpart of
:class:`~repro.core.probability.SampledEstimator` backed by a
:class:`~repro.shard.store.ShardedSampleStore`: same estimator surface
(``probabilities``, ``probability_vector``, ``membership_matrix``,
``record_assertion``, ``retract_approval``, ``version``, ``feedback``),
so :class:`~repro.core.probability.ProbabilisticNetwork` and every
selection strategy run over it unchanged.  The differential suite
(``tests/test_shard_equivalence.py``) pins the claim that matters: a
sharded session's trace is *bit-identical* to the unsharded one when
both hold complete instance sets.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import numpy as np

from ..core.correspondence import Correspondence
from ..core.feedback import Feedback
from ..core.network import MatchingNetwork
from ..core.probability import ProbabilityEstimator
from .store import ShardedSampleStore

__all__ = ["ShardedEstimator"]


class ShardedEstimator(ProbabilityEstimator):
    """Sample frequencies merged exactly across violation-graph shards."""

    def __init__(
        self,
        network: MatchingNetwork,
        target_samples: int = 500,
        walk_steps: int = 5,
        rng: Optional[random.Random] = None,
        chains: int = 1,
        max_shards: Optional[int] = None,
        enumerate_limit: int = 4096,
        parallel: Optional[int] = None,
        restart_probability: float = 0.15,
        pool=None,
        catalog=None,
    ):
        self.network = network
        self.store = ShardedSampleStore(
            network,
            rng=rng,
            target_samples=target_samples,
            walk_steps=walk_steps,
            restart_probability=restart_probability,
            chains=chains,
            max_shards=max_shards,
            enumerate_limit=enumerate_limit,
            parallel=parallel,
            pool=pool,
            catalog=catalog,
        )

    @classmethod
    def from_store(cls, store: ShardedSampleStore) -> "ShardedEstimator":
        """Wrap an existing (e.g. checkpoint-restored) sharded store."""
        estimator = cls.__new__(cls)
        estimator.network = store.network
        estimator.store = store
        return estimator

    @property
    def feedback(self) -> Feedback:
        return self.store.feedback

    @property
    def version(self) -> int:
        return self.store.version

    @property
    def n_shards(self) -> int:
        return len(self.store.shards)

    def membership_matrix(self) -> np.ndarray:
        """The product membership matrix (float64, globally indexed).

        Bounded by ``MAX_PRODUCT_ROWS`` — information-gain selection on a
        sharded estimator is an enumerable-network tool; large sharded
        sessions should select on the merged probability vector instead.
        """
        return self.store.matrix_float()

    def probabilities(self) -> dict[Correspondence, float]:
        return self.store.frequencies()

    def probability_vector(
        self, correspondences: Sequence[Correspondence]
    ) -> np.ndarray:
        whole = self.network.correspondences
        if correspondences is whole or tuple(correspondences) == whole:
            return self.store.probability_vector()
        return super().probability_vector(correspondences)

    def apply_delta(self, result) -> dict[int, int]:
        """Consume a :class:`~repro.core.delta.DeltaResult` incrementally.

        Delegates to :meth:`ShardedSampleStore.apply_delta`: untouched
        shards keep their live engines, stores and RNG streams verbatim;
        touched shards rebuild pre-seeded with the surviving feedback.
        Returns the carried map (new shard position → old position).
        """
        carried = self.store.apply_delta(result)
        self.network = result.network
        return carried

    def record_assertion(self, corr: Correspondence, approved: bool) -> None:
        self.store.record_assertion(corr, approved)

    def retract_approval(self, corr: Correspondence, refill: bool = True) -> None:
        self.store.retract_approval(corr, refill=refill)
