"""Persistent shard worker pool with table affinity and work stealing.

The PR-9 pool was a plain ``ProcessPoolExecutor``: every refill shipped
its shard's *full* payload — sub-network included — to whichever worker
the executor picked.  The sub-network is the expensive, immutable part
of the payload (compiled engine, schema tables); the store and sampler
states are the small, changing part.  :class:`ShardWorkerPool` makes the
obvious production move: **pin each shard to the worker that already
holds its tables**.

* Every worker slot is a single-process executor, so routing a key to a
  slot deterministically routes it to one OS process whose module-level
  cache (:data:`_WORKER_NETWORKS`) holds the sub-networks it has seen.
* A shard's first refill picks the least-loaded slot, ships the network,
  and pins the shard there; later refills ship only the (small) store
  and sampler states — an *affinity hit*.
* When the pinned slot is hot (its in-flight depth exceeds the floor by
  ``steal_threshold``) the job is *stolen* by the least-loaded slot,
  shipping the network again; the pin is kept, so the next refill
  returns home.
* A worker that lost its cache (process restart) answers with a miss
  marker and the job is resubmitted with the network — correctness never
  depends on the cache.

Determinism is untouched by all of this: workers run the same
``refresh()`` code from the same shipped stream positions whatever slot
executes them, and callers apply results in shard order — so the pool is
bit-identical to the sequential fallback, exactly like the PR-9 pool
(``tests/test_shard_equivalence.py`` pins it; the affinity suite pins
hit/steal accounting on top).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["PoolClosedError", "PoolStats", "ShardWorkerPool"]

#: Worker-process cache: (client, shard uid) → sub-network.  Bounded so a
#: long-lived worker serving many tenants cannot hoard every sub-network
#: it ever saw.
_WORKER_NETWORKS: "OrderedDict[tuple[int, int], object]" = OrderedDict()
_WORKER_CACHE_LIMIT = 128

#: Returned by a worker that no longer holds the key's network.
_MISS = "miss"


class PoolClosedError(RuntimeError):
    """The pool was closed; submissions and re-entry are invalid."""


@dataclass(frozen=True)
class PoolStats:
    """A snapshot of the pool's routing counters.

    ``affinity_hits`` counts jobs served by their pinned slot without
    re-shipping the network; ``affinity_misses`` counts first-time (or
    post-delta) shipments; ``steals`` counts jobs diverted off a hot
    pinned slot; ``cache_refreshes`` counts worker-side cache losses that
    forced a resubmission.
    """

    workers: int
    submitted: int
    affinity_hits: int
    affinity_misses: int
    steals: int
    cache_refreshes: int
    per_slot: tuple[int, ...]

    @property
    def hit_rate(self) -> float:
        """Fraction of submissions served from resident tables."""
        return self.affinity_hits / self.submitted if self.submitted else 0.0


def _pool_refill_worker(payload: dict) -> tuple:
    """Refill one shard store in a worker process, caching its network.

    The hot-path twin of :func:`repro.shard.parallel._refill_shard_worker`
    — identical sampling semantics, plus the keyed network cache.
    """
    import random

    from ..core.sampling import InstanceSampler
    from .store import EnumeratingSampleStore

    key = tuple(payload["key"])
    network = payload.get("network")
    if network is not None:
        _WORKER_NETWORKS[key] = network
        _WORKER_NETWORKS.move_to_end(key)
        while len(_WORKER_NETWORKS) > _WORKER_CACHE_LIMIT:
            _WORKER_NETWORKS.popitem(last=False)
    else:
        network = _WORKER_NETWORKS.get(key)
        if network is None:
            return (_MISS, None, None)
        _WORKER_NETWORKS.move_to_end(key)
    sampler = InstanceSampler(
        network,
        walk_steps=payload["walk_steps"],
        rng=random.Random(),
        restart_probability=payload["restart_probability"],
        chains=payload["chains"],
    )
    sampler.set_state(payload["sampler"])
    store = EnumeratingSampleStore.from_state(
        network,
        sampler,
        payload["store"],
        enumerate_limit=payload["enumerate_limit"],
    )
    store.refresh()
    return ("ok", store.get_state(), sampler.get_state())


class ShardWorkerPool:
    """Sticky-routing process pool for shard refills (a shared resource).

    One pool serves many stores/tenants: each store registers a *client*
    id namespacing its shard keys, so two tenants' shard 0 never collide
    in a worker cache.  All bookkeeping is lock-guarded — the service
    layer submits from multiple executor threads.
    """

    def __init__(self, workers: int, steal_threshold: int = 2):
        if workers < 1:
            raise ValueError("workers must be positive")
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be positive")
        self.workers = workers
        self.steal_threshold = steal_threshold
        self._slots: list[Optional[object]] = [None] * workers
        self._inflight = [0] * workers
        self._per_slot = [0] * workers
        self._pins: dict[tuple[int, int], int] = {}
        #: (slot, key) pairs whose worker cache holds the key's network.
        self._resident: set[tuple[int, tuple[int, int]]] = set()
        self._clients = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        self.submitted = 0
        self.affinity_hits = 0
        self.affinity_misses = 0
        self.steals = 0
        self.cache_refreshes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardWorkerPool":
        if self._closed:
            raise PoolClosedError("cannot re-enter a closed ShardWorkerPool")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker slot down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots, self._slots = self._slots, [None] * self.workers
            self._pins.clear()
            self._resident.clear()
        for slot in slots:
            if slot is not None:
                slot.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def register_client(self) -> int:
        """A fresh namespace for one store's shard keys."""
        return next(self._clients)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _executor(self, slot: int):
        if self._slots[slot] is None:
            from concurrent.futures import ProcessPoolExecutor

            self._slots[slot] = ProcessPoolExecutor(max_workers=1)
        return self._slots[slot]

    def _least_loaded(self) -> int:
        depth = min(self._inflight)
        return self._inflight.index(depth)

    def _route(self, key: tuple[int, int]) -> tuple[int, bool, bool]:
        """Pick (slot, ship_network, stolen) for ``key``; caller holds lock."""
        pinned = self._pins.get(key)
        if pinned is None:
            slot = self._least_loaded()
            self._pins[key] = slot
            return slot, True, False
        if (
            self._inflight[pinned] - min(self._inflight)
            >= self.steal_threshold
        ):
            slot = self._least_loaded()
            if slot != pinned:
                return slot, True, True
        return pinned, (pinned, key) not in self._resident, False

    def run_refills(
        self, jobs: Sequence[tuple[tuple[int, int], dict]]
    ) -> list[tuple[dict, dict]]:
        """Refill every job's shard across the pool; results in job order.

        Each job is ``(key, payload)`` with the payload of
        :func:`repro.shard.parallel.refill_shards_parallel` — including
        the ``network``, which is stripped before shipping whenever the
        routed worker already holds it.  Blocking: the caller gets every
        (store state, sampler state) pair back in submission order, so
        applying them is order-deterministic regardless of completion
        interleaving.
        """
        if self._closed:
            raise PoolClosedError("ShardWorkerPool is closed")
        futures = []
        with self._lock:
            for key, payload in jobs:
                slot, ship, stolen = self._route(key)
                self.submitted += 1
                self._per_slot[slot] += 1
                if stolen:
                    self.steals += 1
                if ship:
                    self.affinity_misses += 1
                    wire = {**payload, "key": key}
                else:
                    self.affinity_hits += 1
                    wire = {
                        k: v for k, v in payload.items() if k != "network"
                    }
                    wire["key"] = key
                self._inflight[slot] += 1
                futures.append(
                    (
                        slot,
                        key,
                        payload,
                        self._executor(slot).submit(_pool_refill_worker, wire),
                    )
                )
        results: list[tuple[dict, dict]] = []
        for slot, key, payload, future in futures:
            try:
                status, store_state, sampler_state = future.result()
                if status == _MISS:
                    # The worker restarted and lost its tables; replay the
                    # submission with the network on board.
                    with self._lock:
                        self.cache_refreshes += 1
                        self._resident.discard((slot, key))
                        retry = self._executor(slot).submit(
                            _pool_refill_worker, {**payload, "key": key}
                        )
                    status, store_state, sampler_state = retry.result()
            finally:
                with self._lock:
                    self._inflight[slot] -= 1
            with self._lock:
                self._resident.add((slot, key))
            results.append((store_state, sampler_state))
        return results

    def stats(self) -> PoolStats:
        """A consistent snapshot of the routing counters."""
        with self._lock:
            return PoolStats(
                workers=self.workers,
                submitted=self.submitted,
                affinity_hits=self.affinity_hits,
                affinity_misses=self.affinity_misses,
                steals=self.steals,
                cache_refreshes=self.cache_refreshes,
                per_slot=tuple(self._per_slot),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ShardWorkerPool({self.workers} workers, {state})"
