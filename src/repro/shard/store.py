"""Component-sharded sample store: shard-local Ω* pools, exact merge.

:class:`ShardedSampleStore` partitions the candidate universe by
violation-graph component (:mod:`repro.shard.components`) into
shard-local ``ConstraintEngine`` + ``SampleStore`` pairs, each with an
independent RNG stream derived from one master stream, and merges the
per-shard probability vectors (and, for information gain, the product
membership matrix) at the boundary.  Because disjoint components share
no constraints, the instance space factorises — Ω = ∏ Ω_s × {free
candidates} — so the merged estimates are *exact*, not approximations:

* a candidate's global sample frequency ``count/|Ω|`` equals its
  shard-local ``count_s/|Ω_s|`` (both numerator and denominator scale by
  the same ∏_{t≠s}|Ω_t|, and IEEE division of exactly-representable
  integers rounds the same rational to the same double), so the merged
  probability vector is bit-identical to a whole-network estimate over
  the complete instance set;
* the product membership matrix has ∏|Ω_s| rows whose column counts and
  co-occurrence counts equal the whole-network matrix's, and the
  information-gain reduction is count-based, so gains match bit-for-bit.

Small shards (at most ``enumerate_limit`` instances) are filled by exact
enumeration (:class:`EnumeratingSampleStore`) instead of random walks —
a component of a handful of candidates enumerates in microseconds and is
then provably complete, which is both the speed and the exactness lever.
Larger shards keep the walk/wave sampler, now over masks a fraction of
the global width.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional, Sequence

import numpy as np

from ..core.correspondence import Correspondence
from ..core.feedback import Feedback
from ..core.graphs import InteractionGraph
from ..core.instances import enumerate_instances
from ..core.network import MatchingNetwork
from ..core.sampling import InstanceSampler, SampleStore
from .components import ShardPlan, shard_plan, shard_plan_delta

__all__ = ["EnumeratingSampleStore", "Shard", "ShardedSampleStore"]

#: Product-matrix row guard: materialising the global membership matrix
#: multiplies the shard row counts, which explodes on large networks.
#: Information-gain selection on a sharded estimator is therefore bounded
#: to this many rows; beyond it, use a strategy that only needs the
#: merged probability vector (likelihood/entropy/random).
MAX_PRODUCT_ROWS = 1 << 18


class EnumeratingSampleStore(SampleStore):
    """A :class:`SampleStore` that fills small instance spaces exactly.

    ``_top_up`` first tries to *enumerate* Ω under the current feedback;
    when the space holds at most ``enumerate_limit`` instances the store
    adopts all of them and marks itself exhausted (Ω* = Ω, provably),
    otherwise it falls back to the inherited walk/wave sampling.  All
    conditioning, cache-maintenance, and exhaustion semantics are
    inherited unchanged — only the refill source differs, and only when
    exactness is affordable.
    """

    def __init__(
        self,
        network: MatchingNetwork,
        sampler: Optional[InstanceSampler] = None,
        target_samples: int = 500,
        min_samples: Optional[int] = None,
        rng: Optional[random.Random] = None,
        enumerate_limit: int = 4096,
    ):
        if enumerate_limit < 1:
            raise ValueError("enumerate_limit must be positive")
        # Set before super().__init__: the constructor refills immediately.
        self.enumerate_limit = enumerate_limit
        super().__init__(
            network,
            sampler,
            target_samples=target_samples,
            min_samples=min_samples,
            rng=rng,
        )

    @classmethod
    def from_state(
        cls,
        network: MatchingNetwork,
        sampler: InstanceSampler,
        state: dict,
        enumerate_limit: int = 4096,
    ) -> "EnumeratingSampleStore":
        store = super().from_state(network, sampler, state)
        store.enumerate_limit = enumerate_limit
        return store

    def _top_up(self, goal: int) -> None:
        limit = self.enumerate_limit
        instances = enumerate_instances(self.network, self.feedback, limit=limit + 1)
        if len(instances) > limit:
            super()._top_up(goal)
            return
        mask_of = self.network.engine.mask_of
        start = len(self._sample_masks)
        self._merge([mask_of(instance) for instance in instances])
        # Enumeration is complete by construction: Ω* now *is* Ω(F⁺, F⁻),
        # regardless of min_samples (unlike walk saturation, which only
        # claims completeness below the minimum).
        self._exhausted = True
        self._append_cached_rows(start)
        self._invalidate_derived()


#: Process-wide shard identities for worker-pool affinity.  ``id()``
#: would be reused after GC and silently alias two shards' cached
#: sub-networks; a monotone counter cannot collide.
_SHARD_UIDS = itertools.count(1)


class Shard:
    """One shard: a component-closed slice of the candidate universe.

    ``indices`` are the ascending global engine indices of the shard's
    candidates; ``columns`` is the same as an ``np.intp`` array for
    vector scatter.  ``network`` is the restricted sub-network compiled
    over exactly those candidates — ``CandidateSet.restricted_to``
    preserves insertion order, so local engine index ``k`` is global
    index ``indices[k]`` and the shard store's vectors align with
    ``columns`` directly.  ``uid`` identifies the shard (and hence its
    sub-network) across refills for worker affinity: delta carryover
    keeps the uid with the network, rebuilds draw a fresh one.
    """

    __slots__ = ("position", "indices", "columns", "network", "store", "uid")

    def __init__(
        self,
        position: int,
        indices: tuple[int, ...],
        network: MatchingNetwork,
        store: SampleStore,
        uid: Optional[int] = None,
    ):
        self.position = position
        self.indices = indices
        self.columns = np.asarray(indices, dtype=np.intp)
        self.network = network
        self.store = store
        self.uid = uid if uid is not None else next(_SHARD_UIDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard({self.position}, {len(self.indices)} candidates, "
            f"{len(self.store)} samples)"
        )


def _shard_subnetwork(
    network: MatchingNetwork, keep: Sequence[Correspondence]
) -> MatchingNetwork:
    """The restricted network over only the schemas ``keep`` touches.

    ``MatchingNetwork.restricted_to`` recompiles constraints over the
    *full* schema set and interaction graph, which is O(network) per
    shard — ruinous when hundreds of shards each hold a handful of
    candidates.  Every violation among ``keep`` only ever references
    schemas on its correspondences' endpoints (a one-to-one violation
    shares an attribute; a cycle violation's cycle runs along its own
    correspondences' edges), so compiling over the touched schemas and
    the induced subgraph yields the identical violation set at a cost
    proportional to the shard, not the network.
    """
    touched = {
        endpoint.schema for corr in keep for endpoint in corr.attributes
    }
    schemas = tuple(s for s in network.schemas if s.name in touched)
    graph = InteractionGraph(nodes=touched)
    for name in touched:
        for neighbour in network.graph.neighbors(name):
            if neighbour in touched and name < neighbour:
                graph.add_edge(name, neighbour)
    return MatchingNetwork(
        schemas=schemas,
        candidates=network.candidates.restricted_to(keep),
        graph=graph,
        constraints=network.constraints,
        validate=False,
    )


def _empty_store_state(target_samples: int, min_samples: int) -> dict:
    return {
        "sample_masks": [],
        "approved": [],
        "disapproved": [],
        "exhausted": False,
        "version": 0,
        "target_samples": target_samples,
        "min_samples": min_samples,
    }


class ShardedSampleStore:
    """Ω* maintained shard-by-shard, merged exactly at the boundary.

    Mirrors the :class:`~repro.core.sampling.SampleStore` surface the
    estimator layer consumes — ``probability_vector``, ``matrix_float``,
    ``record_assertion``, ``retract_approval``, ``version``, state
    round-trip — but every operation dispatches to the single shard that
    owns the touched candidate (each violation lives wholly inside one
    component, so conflict repair's victim always shares a shard with
    the new assertion, and the deferred ``refill=False`` flow ends in
    the same shard's ``record_assertion``).  Free (violation-free)
    candidates belong to no shard: they appear in every matching
    instance, so their merged probability is exactly ``1.0`` unless
    disapproved (then ``0.0``) — bit-identical to the whole-network
    frequency a complete unsharded store would report.

    ``parallel`` fans refills across a process pool
    (:mod:`repro.shard.parallel`); the sequential fallback is
    bit-identical because each shard's refill depends only on its own
    store state and RNG stream.
    """

    def __init__(
        self,
        network: MatchingNetwork,
        rng: Optional[random.Random] = None,
        target_samples: int = 500,
        min_samples: Optional[int] = None,
        walk_steps: int = 5,
        restart_probability: float = 0.15,
        chains: int = 1,
        max_shards: Optional[int] = None,
        enumerate_limit: int = 4096,
        parallel: Optional[int] = None,
        fill: bool = True,
        pool=None,
        catalog=None,
    ):
        if target_samples < 1:
            raise ValueError("target_samples must be positive")
        self.network = network
        self.rng = rng or random.Random()
        self.target_samples = target_samples
        self.min_samples = (
            min_samples if min_samples is not None else target_samples // 2
        )
        self.walk_steps = walk_steps
        self.restart_probability = restart_probability
        self.chains = chains
        self.max_shards = max_shards
        self.enumerate_limit = enumerate_limit
        self.parallel = parallel
        # A shared ShardWorkerPool (service-owned, never closed here) and
        # an optional ShardCatalog of reusable compiles/fills — both
        # duck-typed so the shard layer never imports the service layer.
        self._external_pool = pool
        self._client = pool.register_client() if pool is not None else None
        self.catalog = catalog
        self.feedback = Feedback()
        self.version = 0
        self.plan: ShardPlan = shard_plan(network, max_shards=max_shards)
        self._free = np.asarray(self.plan.free, dtype=np.intp)
        self._owner: dict[int, int] = {}
        for position, indices in enumerate(self.plan.shards):
            for index in indices:
                self._owner[index] = position
        self.shards: list[Shard] = [
            self._build_shard(position, indices)
            for position, indices in enumerate(self.plan.shards)
        ]
        self._vector_cache: Optional[np.ndarray] = None
        self._matrix_cache: Optional[np.ndarray] = None
        self._matrix_float_cache: Optional[np.ndarray] = None
        self._pool = None
        self._pool_workers: Optional[int] = None
        if fill:
            self.refill()

    def _build_shard(self, position: int, indices: tuple[int, ...]) -> Shard:
        """Construct one shard; the master rng spawns its stream.

        Shard RNG streams are drawn from ``self.rng`` in shard order, so
        the full decomposition is a pure function of the master seed —
        and checkpointing the per-shard sampler states (not the master)
        is what resumes mid-flight sessions bit-for-bit.

        The shard store starts from the slice of ``self.feedback`` its
        candidates carry (empty on a fresh build): the delta path
        rebuilds touched shards with the surviving feedback pre-seeded,
        so their refill enumerates/walks the *conditioned* space Ω(F⁺,
        F⁻) directly — the same space a fresh store reaches by replaying
        that feedback.
        """
        correspondences = self.network.correspondences
        members = [correspondences[i] for i in indices]
        if self.catalog is not None:
            subnet = self.catalog.subnetwork(
                self.network,
                indices,
                lambda: _shard_subnetwork(self.network, members),
            )
        else:
            subnet = _shard_subnetwork(self.network, members)
        # The master rng ALWAYS spawns the shard stream here, catalog hit
        # or not — stream spawning is part of the deterministic contract.
        sampler = InstanceSampler(
            subnet,
            walk_steps=self.walk_steps,
            rng=random.Random(self.rng.getrandbits(64)),
            restart_probability=self.restart_probability,
            chains=self.chains,
        )
        state = _empty_store_state(self.target_samples, self.min_samples)
        if self.feedback:
            member_set = set(members)
            state["approved"] = sorted(
                corr for corr in self.feedback.approved if corr in member_set
            )
            state["disapproved"] = sorted(
                corr
                for corr in self.feedback.disapproved
                if corr in member_set
            )
        if (
            self.catalog is not None
            and not state["approved"]
            and not state["disapproved"]
        ):
            # Another tenant may already have enumerated this shard's
            # unconditioned Ω — a pure function of the sub-network, so
            # adopting its store state (sampler untouched: enumeration
            # consumes no RNG) is bit-identical to enumerating again.
            cached = self.catalog.enumerated_fill(
                self.network, self._fill_key(indices)
            )
            if cached is not None:
                state = cached
        store = EnumeratingSampleStore.from_state(
            subnet,
            sampler,
            state,
            enumerate_limit=self.enumerate_limit,
        )
        return Shard(position, indices, subnet, store)

    def _fill_key(self, indices: tuple[int, ...]) -> tuple:
        """Catalog key for a shard's unconditioned enumerated fill."""
        return (
            indices,
            self.target_samples,
            self.min_samples,
            self.enumerate_limit,
        )

    # ------------------------------------------------------------------
    # Refill
    # ------------------------------------------------------------------
    def refill(self, parallel: Optional[int] = None) -> None:
        """Top up every shard below target (the fan-out point).

        ``parallel`` (or the instance knob) > 1 ships needy shards to a
        process pool; otherwise they refresh sequentially in shard
        order.  Both paths are bit-identical: a shard refill reads and
        writes nothing but that shard's store and sampler streams.
        """
        workers = parallel if parallel is not None else self.parallel
        needy = [
            shard
            for shard in self.shards
            if len(shard.store) < shard.store.target_samples
            and not shard.store.exhausted
        ]
        if needy:
            watched = self._fill_candidates(needy)
            if workers is not None and workers > 1 and len(needy) > 1:
                from .parallel import refill_shards_parallel

                refill_shards_parallel(
                    needy,
                    workers=workers,
                    pool=self._ensure_pool(workers),
                    client=self._client,
                )
            else:
                for shard in needy:
                    shard.store.refresh()
            self._publish_fills(watched)
        self._invalidate()

    def _fill_candidates(self, needy: Sequence[Shard]) -> list[tuple[Shard, dict]]:
        """Shards whose refill might produce a catalog-shareable fill.

        A fill is shareable only when the shard carries no feedback (its
        Ω is the unconditioned space) — the pre-refill sampler state is
        captured so pure enumeration (which consumes no RNG) can be told
        apart from walk saturation afterwards.
        """
        if self.catalog is None:
            return []
        return [
            (shard, shard.store.sampler.get_state())
            for shard in needy
            if not shard.store.feedback
        ]

    def _publish_fills(self, watched: Sequence[tuple[Shard, dict]]) -> None:
        for shard, before in watched:
            if (
                shard.store.exhausted
                and shard.store.sampler.get_state() == before
            ):
                self.catalog.put_enumerated_fill(
                    self.network,
                    self._fill_key(shard.indices),
                    shard.store.get_state(),
                )

    def _ensure_pool(self, workers: int):
        """The persistent worker pool for parallel refills.

        A service-shared pool passed at construction wins outright (its
        worker count is the service's concern, and the service closes
        it).  Otherwise the store lazily owns a
        :class:`~repro.shard.pool.ShardWorkerPool` — created on first
        parallel refill and reused until :meth:`close`, recreated only if
        the worker count changes.  The pool carries no *authoritative*
        sampling state (workers receive full store and sampler states per
        call; their network caches are a shipping optimisation), so reuse
        cannot affect results.
        """
        if self._external_pool is not None:
            return self._external_pool
        if self._pool is not None and self._pool_workers != workers:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            from .pool import ShardWorkerPool

            self._pool = ShardWorkerPool(workers)
            self._pool_workers = workers
            self._client = self._pool.register_client()
        return self._pool

    def close(self) -> None:
        """Shut down the owned worker pool (idempotent).

        A service-shared pool is deliberately left running — the service
        owns its lifecycle and other tenants are still using it.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_workers = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Network evolution
    # ------------------------------------------------------------------
    def apply_delta(self, result) -> dict[int, int]:
        """Re-shard in place after a :class:`~repro.core.delta.DeltaResult`.

        The new plan comes from :func:`~repro.shard.components.shard_plan_delta`
        — identical to the plan :meth:`from_state` would recompute on the
        successor network, so checkpoints taken after a delta restore
        cleanly.  Shards whose candidate sets are untouched images of old
        shards keep their live sub-network, store and RNG objects
        *verbatim* (bit-identical masks and stream positions, zero
        resampling: the final :meth:`refill` skips them because they are
        already at target or exhausted).  Touched shards are rebuilt with
        the surviving feedback pre-seeded, so their refill produces the
        conditioned space a fresh store reaches by replaying that same
        feedback.  Feedback on removed candidates is dropped (including
        candidates removed and re-added in one delta — the re-added twin
        starts fresh).

        Returns the carried map (new shard position → old position) for
        observability; its complement is the rebuilt set.

        A rescore-only delta (``result.structural`` False) swaps the
        global network reference and returns the identity carried map:
        the engine, the shard plan, every shard's sub-network, store and
        RNG stream stay byte-identical (sample frequencies never read
        matcher confidence — confidence-ranked selection reads the
        *global* candidate set, which the successor network carries).
        """
        if not result.structural:
            self.network = result.network
            return {position: position for position in range(len(self.shards))}
        plan, carried = shard_plan_delta(
            self.plan, result, max_shards=self.max_shards
        )
        removed = result.removed_correspondences
        old_shards = self.shards
        self.network = result.network
        self.plan = plan
        self._free = np.asarray(plan.free, dtype=np.intp)
        self._owner = {}
        for position, indices in enumerate(plan.shards):
            for index in indices:
                self._owner[index] = position
        self.feedback = Feedback(
            sorted(c for c in self.feedback.approved if c not in removed),
            sorted(c for c in self.feedback.disapproved if c not in removed),
        )
        self.shards = []
        for position, indices in enumerate(plan.shards):
            old_position = carried.get(position)
            if old_position is not None:
                old = old_shards[old_position]
                self.shards.append(
                    Shard(position, indices, old.network, old.store,
                          uid=old.uid)
                )
            else:
                # Rebuilt shards draw fresh streams from the master rng
                # in (new) shard order — deterministic given the master
                # stream position, with carried shards consuming nothing.
                self.shards.append(self._build_shard(position, indices))
        self._invalidate()
        self.refill()
        return carried

    # ------------------------------------------------------------------
    # Conditioning
    # ------------------------------------------------------------------
    def _shard_of(self, corr: Correspondence) -> Optional[Shard]:
        index = self.network.engine.index_of.get(corr)
        if index is None:
            return None
        position = self._owner.get(index)
        return None if position is None else self.shards[position]

    def record_assertion(self, corr: Correspondence, approved: bool) -> None:
        """Condition the owning shard on one assertion.

        Free and outside-universe candidates condition nothing — they
        constrain no shard's instance space — but still enter the global
        feedback so merged views and checkpoints see them.
        """
        self.feedback.record(corr, approved)
        shard = self._shard_of(corr)
        if shard is not None:
            shard.store.record_assertion(corr, approved)
        self._patch_vector(shard, corr, 1.0 if approved else 0.0)

    def retract_approval(self, corr: Correspondence, refill: bool = True) -> None:
        """Re-condition on conflict repair (see ``SampleStore``).

        The repair victim always shares a violation — hence a shard —
        with the assertion that triggered the repair, so a deferred
        ``refill=False`` retraction is completed by the subsequent
        ``record_assertion`` on the *same* shard store.
        """
        self.feedback.retract_approval(corr)
        shard = self._shard_of(corr)
        if shard is not None:
            shard.store.retract_approval(corr, refill=refill)
        self._patch_vector(shard, corr, 1.0)

    def _invalidate(self) -> None:
        self.version += 1
        self._vector_cache = None
        self._matrix_cache = None
        self._matrix_float_cache = None

    def _patch_vector(self, shard: Optional[Shard], corr: Correspondence,
                      free_value: float) -> None:
        """Advance the version, patching the merged vector incrementally.

        An assertion conditions exactly one shard (or one free column),
        leaving every other shard's store untouched, so the merged
        vector changes only on that shard's columns — a copy-and-scatter
        over the cached vector is bit-identical to a full rebuild at a
        cost proportional to the shard, not the network.  The product
        matrices stay fully invalidated (their rows change shape).
        """
        self.version += 1
        self._matrix_cache = None
        self._matrix_float_cache = None
        if self._vector_cache is None:
            return
        vector = self._vector_cache.copy()
        if shard is not None:
            vector[shard.columns] = shard.store.probability_vector()
        else:
            index = self.network.engine.index_of.get(corr)
            if index is not None:
                vector[index] = free_value
        vector.setflags(write=False)
        self._vector_cache = vector

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    def probability_vector(self) -> np.ndarray:
        """Merged sample frequencies over the *global* candidate index.

        Shard vectors scatter to their global columns; free candidates
        get exactly ``1.0`` (they are in every instance) or ``0.0`` once
        disapproved — both bit-identical to the count/total frequency a
        complete whole-network store reports for them.
        """
        if self._vector_cache is None:
            vector = np.zeros(self.network.engine.n, dtype=np.float64)
            if len(self._free):
                vector[self._free] = 1.0
                index_of = self.network.engine.index_of
                disapproved = [
                    index
                    for corr in self.feedback.disapproved
                    if (index := index_of.get(corr)) is not None
                    and self._owner.get(index) is None
                ]
                if disapproved:
                    vector[np.asarray(disapproved, dtype=np.intp)] = 0.0
            for shard in self.shards:
                vector[shard.columns] = shard.store.probability_vector()
            vector.setflags(write=False)
            self._vector_cache = vector
        return self._vector_cache

    def _product_rows(self) -> int:
        rows = 1
        for shard in self.shards:
            rows *= len(shard.store)
        return rows

    def matrix_float(self) -> np.ndarray:
        """The *product* membership matrix, globally indexed (float64).

        Row set = Ω (every combination of one instance per shard, free
        candidates in all rows), materialised with mixed-radix
        repeat/tile expansion — shard 0 outermost.  Column counts and
        co-occurrence counts equal the whole-network matrix's, which is
        all the (count-based) information-gain reduction reads, so gains
        are bit-identical when both sides are complete.  Guarded at
        ``MAX_PRODUCT_ROWS``: beyond that, information gain on a sharded
        estimator is out of budget by construction — use a strategy that
        needs only the merged probability vector.
        """
        if self._matrix_float_cache is None:
            rows = self._product_rows()
            if rows > MAX_PRODUCT_ROWS:
                # Name the offending factors: the product is ∏|Ω_s| over
                # the shards, so showing the largest per-shard row counts
                # tells the user exactly which components blow the budget
                # and whether retuning max_shards could help.
                factors = sorted(
                    ((len(shard.store), shard.position) for shard in self.shards),
                    reverse=True,
                )
                shown = ", ".join(
                    f"shard {position}: {count} rows"
                    for count, position in factors[:6]
                )
                if len(factors) > 6:
                    shown += f", … ({len(factors) - 6} more)"
                raise ValueError(
                    f"sharded membership matrix would need {rows} rows "
                    f"(> {MAX_PRODUCT_ROWS}); the product factorises over "
                    f"{len(self.shards)} shards, largest first: [{shown}]. "
                    "Information-gain selection does not scale to this "
                    "sharded network — use the likelihood, entropy, or "
                    "random strategy instead, or tune max_shards "
                    "deliberately (fewer, larger shards cap their row "
                    "counts at the sampling target instead of enumerating "
                    "exactly)"
                )
            matrix = np.zeros((rows, self.network.engine.n), dtype=np.float64)
            if rows and len(self._free):
                matrix[:, self._free] = 1.0
                index_of = self.network.engine.index_of
                for corr in self.feedback.disapproved:
                    index = index_of.get(corr)
                    if index is not None and self._owner.get(index) is None:
                        matrix[:, index] = 0.0
            outer = 1
            for shard in self.shards:
                count = len(shard.store)
                inner = rows // (outer * count) if count else 0
                block = shard.store.matrix_float()
                matrix[:, shard.columns] = np.tile(
                    np.repeat(block, inner, axis=0), (outer, 1)
                )
                outer *= count
            matrix.setflags(write=False)
            self._matrix_float_cache = matrix
        return self._matrix_float_cache

    def matrix(self) -> np.ndarray:
        """Boolean view of :meth:`matrix_float` (same product rows)."""
        if self._matrix_cache is None:
            matrix = self.matrix_float() != 0.0
            matrix.setflags(write=False)
            self._matrix_cache = matrix
        return self._matrix_cache

    @property
    def exhausted(self) -> bool:
        """True when every shard provably holds its whole instance space."""
        return all(shard.store.exhausted for shard in self.shards)

    def __len__(self) -> int:
        """Distinct global instances currently represented: ∏ shard sizes."""
        return self._product_rows()

    # ------------------------------------------------------------------
    # State round-trip (the durability layer's hooks)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Persistent state: global feedback + per-shard store/sampler.

        The shard *plan* is recomputed on restore (it is a pure function
        of the network and ``max_shards``); what must round-trip exactly
        is each shard's Ω* masks and both of its RNG streams, plus the
        master stream that would seed any future shards.
        """
        return {
            "approved": sorted(self.feedback.approved),
            "disapproved": sorted(self.feedback.disapproved),
            "version": self.version,
            "rng": self.rng.getstate(),
            "shards": [
                {
                    "store": shard.store.get_state(),
                    "sampler": shard.store.sampler.get_state(),
                }
                for shard in self.shards
            ],
        }

    @classmethod
    def from_state(
        cls,
        network: MatchingNetwork,
        state: dict,
        target_samples: int = 500,
        min_samples: Optional[int] = None,
        walk_steps: int = 5,
        restart_probability: float = 0.15,
        chains: int = 1,
        max_shards: Optional[int] = None,
        enumerate_limit: int = 4096,
        parallel: Optional[int] = None,
        pool=None,
        catalog=None,
    ) -> "ShardedSampleStore":
        """Rebuild from :meth:`get_state` without consuming any RNG.

        The constructor path spawns shard streams from the master rng
        and refills; a restore must instead adopt the checkpointed
        stores verbatim and overwrite every stream with its captured
        position.
        """
        store = cls(
            network,
            rng=random.Random(),
            target_samples=target_samples,
            min_samples=min_samples,
            walk_steps=walk_steps,
            restart_probability=restart_probability,
            chains=chains,
            max_shards=max_shards,
            enumerate_limit=enumerate_limit,
            parallel=parallel,
            fill=False,
            pool=pool,
            catalog=catalog,
        )
        version, internal, gauss = state["rng"]
        store.rng.setstate((version, tuple(internal), gauss))
        store.feedback = Feedback(state["approved"], state["disapproved"])
        store.version = int(state["version"])
        shard_states = state["shards"]
        if len(shard_states) != len(store.shards):
            raise ValueError(
                f"checkpoint has {len(shard_states)} shards but the network "
                f"plans {len(store.shards)} — was it saved for a different "
                "network or max_shards?"
            )
        for shard, shard_state in zip(store.shards, shard_states):
            sampler = shard.store.sampler
            sampler.set_state(shard_state["sampler"])
            shard.store = EnumeratingSampleStore.from_state(
                shard.network,
                sampler,
                shard_state["store"],
                enumerate_limit=store.enumerate_limit,
            )
        return store

    def shard_sizes(self) -> list[tuple[int, int]]:
        """Per-shard (candidates, samples) — diagnostics for benches."""
        return [
            (len(shard.indices), len(shard.store)) for shard in self.shards
        ]

    def frequencies(self) -> dict[Correspondence, float]:
        """Mapping view of :meth:`probability_vector` (module boundaries)."""
        return dict(
            zip(
                self.network.correspondences,
                self.probability_vector().tolist(),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSampleStore({len(self.shards)} shards, "
            f"{len(self.plan.free)} free candidates)"
        )
