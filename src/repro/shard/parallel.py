"""Process-pool fan-out for shard refills.

Each shard's refill reads and writes nothing but that shard's store
masks and RNG streams, so the unit of work ships cleanly to a worker
process: (sub-network, store state, sampler state) out, (store state,
sampler state) back.  The worker runs the *same* ``refresh()`` code the
sequential path runs, from the same captured stream positions, so the
fan-out is bit-identical to the sequential fallback by construction —
``tests/test_shard_equivalence.py`` pins it.

Sub-networks pickle whole (the engine re-wraps its index proxy on
unpickle, see ``ConstraintEngine.__getstate__``); everything else
crosses the boundary as the plain-data state dicts the durability layer
already round-trips.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..core.sampling import InstanceSampler
from .store import EnumeratingSampleStore, Shard

__all__ = ["refill_shards_parallel"]


def _refill_shard_worker(payload: dict) -> tuple[dict, dict]:
    """Refill one shard store in a worker process; return its new state."""
    network = payload["network"]
    sampler = InstanceSampler(
        network,
        walk_steps=payload["walk_steps"],
        rng=random.Random(),
        restart_probability=payload["restart_probability"],
        chains=payload["chains"],
    )
    sampler.set_state(payload["sampler"])
    store = EnumeratingSampleStore.from_state(
        network,
        sampler,
        payload["store"],
        enumerate_limit=payload["enumerate_limit"],
    )
    store.refresh()
    return store.get_state(), sampler.get_state()


def refill_shards_parallel(
    shards: Sequence[Shard],
    workers: int,
    pool: ProcessPoolExecutor | None = None,
    client: int | None = None,
) -> None:
    """Refresh every shard store across a process pool, in place.

    Results are applied in shard order (both pool kinds preserve input
    order), and each worker starts from the shard's captured stream
    positions, so the post-state is bit-identical to running
    ``store.refresh()`` sequentially.

    ``pool`` may be either a plain executor or a
    :class:`~repro.shard.pool.ShardWorkerPool` (detected by its
    ``run_refills`` method); the latter routes each job by ``(client,
    shard.uid)`` so repeat refills hit the worker already holding the
    shard's sub-network.  The caller keeps ownership either way — the
    pool is *not* shut down here; without one a throwaway executor is
    created and torn down, which pays worker spin-up on every refill.
    """
    payloads = []
    for shard in shards:
        sampler = shard.store.sampler
        payloads.append(
            {
                "network": shard.network,
                "store": shard.store.get_state(),
                "sampler": sampler.get_state(),
                "walk_steps": sampler.walk_steps,
                "restart_probability": sampler.restart_probability,
                "chains": sampler.chains,
                "enumerate_limit": shard.store.enumerate_limit,
            }
        )
    if pool is not None and hasattr(pool, "run_refills"):
        jobs = [
            ((client or 0, shard.uid), payload)
            for shard, payload in zip(shards, payloads)
        ]
        results = pool.run_refills(jobs)
    elif pool is not None:
        results = list(pool.map(_refill_shard_worker, payloads))
    else:
        with ProcessPoolExecutor(max_workers=workers) as owned:
            results = list(owned.map(_refill_shard_worker, payloads))
    for shard, (store_state, sampler_state) in zip(shards, results):
        sampler = shard.store.sampler
        sampler.set_state(sampler_state)
        shard.store = EnumeratingSampleStore.from_state(
            shard.network,
            sampler,
            store_state,
            enumerate_limit=shard.store.enumerate_limit,
        )
