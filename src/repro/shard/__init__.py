"""Component-sharded reconciliation: exact divide-and-conquer sampling.

The violation graph of a matching network splits into connected
components that share no constraints, so the instance space is a product
space and every probabilistic quantity the reconciliation loop consumes
factorises over the components.  This package exploits that:

* :mod:`repro.shard.components` — component discovery and deterministic
  shard planning (:func:`shard_plan`);
* :mod:`repro.shard.store` — shard-local sample stores (exact
  enumeration for small shards, walk/wave sampling for large ones) and
  the exact boundary merge (:class:`ShardedSampleStore`);
* :mod:`repro.shard.estimator` — the drop-in
  :class:`~repro.core.probability.ProbabilityEstimator`
  (:class:`ShardedEstimator`);
* :mod:`repro.shard.parallel` — process-pool refill fan-out, bit-
  identical to the sequential fallback.

The differential suite in ``tests/test_shard_equivalence.py`` pins the
whole construction: sharded session traces are bit-identical to the
unsharded reference across strategies and seeds.
"""

from .components import (
    ShardPlan,
    shard_plan,
    shard_plan_delta,
    violation_components,
)
from .estimator import ShardedEstimator
from .pool import PoolClosedError, PoolStats, ShardWorkerPool
from .store import (
    MAX_PRODUCT_ROWS,
    EnumeratingSampleStore,
    Shard,
    ShardedSampleStore,
)

__all__ = [
    "MAX_PRODUCT_ROWS",
    "EnumeratingSampleStore",
    "PoolClosedError",
    "PoolStats",
    "Shard",
    "ShardPlan",
    "ShardWorkerPool",
    "ShardedEstimator",
    "ShardedSampleStore",
    "shard_plan",
    "shard_plan_delta",
    "violation_components",
]
