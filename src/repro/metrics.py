"""Evaluation measures (paper Section VI-A/B).

Precision/recall against the ground-truth selective matching, the user-effort
ratio, and the K-L divergence machinery used for the sampling-effectiveness
study (Fig. 7).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, TypeVar

T = TypeVar("T")

#: Probability floor applied to the approximating distribution in KL terms,
#: so that a sampled zero against a positive exact probability yields a
#: large-but-finite penalty instead of infinity.
KL_EPSILON = 1e-12


def precision(predicted: Iterable[T], truth: Iterable[T]) -> float:
    """Prec(V) = |V ∩ M| / |V|; defined as 1.0 for an empty prediction."""
    predicted_set, truth_set = set(predicted), set(truth)
    if not predicted_set:
        return 1.0
    return len(predicted_set & truth_set) / len(predicted_set)


def recall(predicted: Iterable[T], truth: Iterable[T]) -> float:
    """Rec(V) = |V ∩ M| / |M|; defined as 1.0 for an empty ground truth."""
    predicted_set, truth_set = set(predicted), set(truth)
    if not truth_set:
        return 1.0
    return len(predicted_set & truth_set) / len(truth_set)


def f_measure(predicted: Iterable[T], truth: Iterable[T]) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    predicted_set, truth_set = set(predicted), set(truth)
    p = precision(predicted_set, truth_set)
    r = recall(predicted_set, truth_set)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def user_effort(asserted_count: int, total_candidates: int) -> float:
    """E = |F⁺ ∪ F⁻| / |C| (paper Section VI-A)."""
    if total_candidates <= 0:
        raise ValueError("total_candidates must be positive")
    if asserted_count < 0:
        raise ValueError("asserted_count must be non-negative")
    return asserted_count / total_candidates


def _bernoulli_kl(p: float, q: float) -> float:
    """KL between two Bernoulli distributions, with q floored."""
    q = min(max(q, KL_EPSILON), 1.0 - KL_EPSILON)
    total = 0.0
    if p > 0.0:
        total += p * math.log(p / q)
    if p < 1.0:
        total += (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
    return total


def kl_divergence(
    exact: Mapping[T, float], approximate: Mapping[T, float]
) -> float:
    """D_KL(P‖Q) summed over the per-correspondence Bernoulli variables.

    The paper's Equation 6 writes only the Σ p log p/q terms; we use the full
    Bernoulli divergence (including the complementary outcome) so the measure
    is a proper divergence of the inclusion indicators: non-negative and zero
    iff the distributions agree.
    """
    total = 0.0
    for key, p in exact.items():
        total += _bernoulli_kl(p, approximate.get(key, 0.0))
    return total


def kl_ratio(
    exact: Mapping[T, float],
    approximate: Mapping[T, float],
    baseline_probability: float = 0.5,
) -> float:
    """KL_ratio = D_KL(P‖Q) / D_KL(P‖U) (paper Section VI-B).

    U is the maximum-entropy baseline assigning ``baseline_probability`` to
    every correspondence.  Returns 0.0 when the baseline divergence vanishes
    (exact distribution already uniform) and the sampled one does too.
    """
    baseline = {key: baseline_probability for key in exact}
    denominator = kl_divergence(exact, baseline)
    numerator = kl_divergence(exact, approximate)
    if denominator == 0.0:
        return 0.0 if numerator == 0.0 else math.inf
    return numerator / denominator


def mean_absolute_error(
    exact: Mapping[T, float], approximate: Mapping[T, float]
) -> float:
    """Average |p_c − q_c|; a robust secondary view on sampling quality."""
    if not exact:
        return 0.0
    return sum(
        abs(p - approximate.get(key, 0.0)) for key, p in exact.items()
    ) / len(exact)
