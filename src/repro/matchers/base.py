"""Matcher interfaces and the similarity-matrix container.

A *first-line matcher* maps a pair of attributes to a similarity in [0, 1];
running one over two schemas yields a :class:`SimilarityMatrix`.  Second-line
components (ensembles, selectors — see :mod:`repro.matchers.ensemble`)
combine and threshold matrices into candidate correspondences.

The matcher layer is *batch-first*: :meth:`Matcher.similarity_matrix`
computes a whole schema-pair block as one ``numpy`` array, and every
built-in matcher overrides it with a vectorised kernel (see
:mod:`repro.matchers.string_metrics`).  The scalar :meth:`Matcher.similarity`
remains the reference semantics — the default ``similarity_matrix`` wraps it,
so third-party matchers that only implement the scalar method keep working —
and property tests pin each matrix kernel to its scalar counterpart.
"""

from __future__ import annotations

import abc
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.correspondence import Correspondence, correspondence
from ..core.schema import Attribute, Schema


class SimilarityMatrix:
    """Dense pairwise similarities between two schemas' attributes.

    Array-backed: scores live in a float64 block indexed by the schemas'
    attribute order (readable via :attr:`scores` for vectorised selectors),
    with an explicit set-mask so that sparsely populated matrices (tests,
    fixtures) keep the historical behaviour of reporting only explicitly
    assigned cells from :meth:`items`/:meth:`pairs_above`/:meth:`__len__`.
    """

    def __init__(self, left: Schema, right: Schema):
        self.left = left
        self.right = right
        self.left_attrs: tuple[Attribute, ...] = tuple(left)
        self.right_attrs: tuple[Attribute, ...] = tuple(right)
        self._row = {attr: i for i, attr in enumerate(self.left_attrs)}
        self._col = {attr: j for j, attr in enumerate(self.right_attrs)}
        shape = (len(self.left_attrs), len(self.right_attrs))
        self._scores = np.zeros(shape, dtype=np.float64)
        self._mask = np.zeros(shape, dtype=bool)

    @classmethod
    def from_array(
        cls, left: Schema, right: Schema, scores: np.ndarray
    ) -> "SimilarityMatrix":
        """Wrap a fully populated score block (every cell counts as set)."""
        matrix = cls(left, right)
        block = np.array(scores, dtype=np.float64, copy=True)
        if block.shape != matrix._scores.shape:
            raise ValueError(
                f"score block shape {block.shape} does not match "
                f"{matrix._scores.shape} for schemas "
                f"{left.name!r} × {right.name!r}"
            )
        if block.size and (
            np.isnan(block).any() or block.min() < 0.0 or block.max() > 1.0
        ):
            raise ValueError("similarity outside [0, 1]")
        matrix._scores = block
        matrix._mask = np.ones(block.shape, dtype=bool)
        return matrix

    @property
    def scores(self) -> np.ndarray:
        """The score block as a read-only float64 view (unset cells are 0)."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    @property
    def set_mask(self) -> np.ndarray:
        """Read-only boolean view of which cells were explicitly set."""
        view = self._mask.view()
        view.flags.writeable = False
        return view

    def set(self, left_attr: Attribute, right_attr: Attribute, score: float) -> None:
        if not 0.0 <= score <= 1.0:
            raise ValueError(f"similarity {score} outside [0, 1]")
        try:
            row, col = self._row[left_attr], self._col[right_attr]
        except KeyError:
            raise KeyError(
                f"({left_attr}, {right_attr}) is not an attribute pair of "
                f"schemas {self.left.name!r} × {self.right.name!r}"
            ) from None
        self._scores[row, col] = score
        self._mask[row, col] = True

    def get(self, left_attr: Attribute, right_attr: Attribute) -> float:
        row = self._row.get(left_attr)
        col = self._col.get(right_attr)
        if row is None or col is None:
            return 0.0
        return float(self._scores[row, col])

    def items(self) -> Iterator[tuple[tuple[Attribute, Attribute], float]]:
        rows, cols = np.nonzero(self._mask)
        for row, col in zip(rows.tolist(), cols.tolist()):
            yield (
                (self.left_attrs[row], self.right_attrs[col]),
                float(self._scores[row, col]),
            )

    def pairs_above(
        self, threshold: float
    ) -> list[tuple[Attribute, Attribute, float]]:
        """All set attribute pairs whose similarity meets ``threshold``."""
        rows, cols = np.nonzero(self._mask & (self._scores >= threshold))
        return [
            (
                self.left_attrs[row],
                self.right_attrs[col],
                float(self._scores[row, col]),
            )
            for row, col in zip(rows.tolist(), cols.tolist())
        ]

    def to_correspondences(
        self, threshold: float
    ) -> dict[Correspondence, float]:
        """Thresholded conversion into correspondence → confidence."""
        return {
            correspondence(left_attr, right_attr): score
            for left_attr, right_attr, score in self.pairs_above(threshold)
        }

    def __len__(self) -> int:
        return int(self._mask.sum())


class Matcher(abc.ABC):
    """A first-line matcher: attribute-pair similarity in [0, 1]."""

    name: str = "matcher"

    #: The :class:`Attribute` fields this matcher's score is a pure function
    #: of (e.g. ``("name",)``), or ``None`` when unknown.  When set,
    #: :meth:`MatcherPipeline.match_network` reuses one computed score block
    #: for every edge whose schemas project to the same field tuples —
    #: schemas repeat attribute vocabularies heavily in scaled corpora.
    #:
    #: **Every built-in matcher declares this** (name-based matchers via
    #: :class:`CachedMatcher`, type matchers as ``("data_type",)``, and
    #: ensembles derive the union of their members' fields), so the stock
    #: pipelines always take the deduplicated network path; a regression
    #: test pins that.  Third-party matchers default to ``None``, which is
    #: the conservative contract: scores might depend on anything (even the
    #: attribute's schema), so ``match_network`` falls back to one block per
    #: edge with no cross-edge reuse.  Declare the fields your score really
    #: reads to opt back into deduplication — an ensemble regains it only
    #: when *all* of its members declare.
    depends_on: tuple[str, ...] | None = None

    @abc.abstractmethod
    def similarity(self, left: Attribute, right: Attribute) -> float:
        """Similarity of two attributes (the scalar reference semantics)."""

    def similarity_matrix(
        self,
        left_attrs: Sequence[Attribute],
        right_attrs: Sequence[Attribute],
    ) -> np.ndarray:
        """The whole ``len(left) × len(right)`` similarity block at once.

        Built-in matchers override this with vectorised kernels; the default
        wraps the scalar :meth:`similarity` so any matcher that only
        implements the scalar method participates in the batch API.
        """
        return self.similarity_matrix_scalar(left_attrs, right_attrs)

    def similarity_matrix_scalar(
        self,
        left_attrs: Sequence[Attribute],
        right_attrs: Sequence[Attribute],
    ) -> np.ndarray:
        """Reference block implementation: one scalar call per cell.

        Kept public so equivalence tests and benchmarks can compare the
        vectorised path against the per-pair baseline.
        """
        block = np.empty((len(left_attrs), len(right_attrs)), dtype=np.float64)
        for i, left_attr in enumerate(left_attrs):
            for j, right_attr in enumerate(right_attrs):
                block[i, j] = self.similarity(left_attr, right_attr)
        return block

    def match(self, left: Schema, right: Schema) -> SimilarityMatrix:
        """Score every attribute pair of two schemas (batch path)."""
        return SimilarityMatrix.from_array(
            left, right, self.similarity_matrix(left.attributes, right.attributes)
        )


class CachedMatcher(Matcher):
    """Mixin-style base for matchers that depend only on attribute *names*.

    Scalar calls go through a name-pair cache (names repeat heavily across
    the O(n²) schema pairs of a network); the batch path instead dedupes the
    name lists per side and delegates to :meth:`_name_similarity_matrix`,
    which vectorised subclasses override with a block kernel over unique
    names.
    """

    depends_on = ("name",)

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], float] = {}

    def similarity(self, left: Attribute, right: Attribute) -> float:
        return self._cached_name_similarity(left.name, right.name)

    def _cached_name_similarity(self, left_name: str, right_name: str) -> float:
        key = (
            (left_name, right_name)
            if left_name <= right_name
            else (right_name, left_name)
        )
        cached = self._cache.get(key)
        if cached is None:
            cached = self._name_similarity(key[0], key[1])
            self._cache[key] = cached
        return cached

    def similarity_matrix(
        self,
        left_attrs: Sequence[Attribute],
        right_attrs: Sequence[Attribute],
    ) -> np.ndarray:
        left_names = [attr.name for attr in left_attrs]
        right_names = [attr.name for attr in right_attrs]
        unique_left = list(dict.fromkeys(left_names))
        unique_right = list(dict.fromkeys(right_names))
        block = np.asarray(
            self._name_similarity_matrix(unique_left, unique_right),
            dtype=np.float64,
        )
        if len(unique_left) == len(left_names) and len(unique_right) == len(
            right_names
        ):
            return block
        left_index = {name: i for i, name in enumerate(unique_left)}
        right_index = {name: j for j, name in enumerate(unique_right)}
        rows = [left_index[name] for name in left_names]
        cols = [right_index[name] for name in right_names]
        return block[np.ix_(rows, cols)]

    def _name_similarity_matrix(
        self, left_names: Sequence[str], right_names: Sequence[str]
    ) -> np.ndarray:
        """Name-level block over (per-side deduplicated) name lists.

        Default: the scalar metric through the name-pair cache.  Vectorised
        matchers override this with a batch kernel.
        """
        block = np.empty((len(left_names), len(right_names)), dtype=np.float64)
        for i, left_name in enumerate(left_names):
            for j, right_name in enumerate(right_names):
                block[i, j] = self._cached_name_similarity(left_name, right_name)
        return block

    @abc.abstractmethod
    def _name_similarity(self, left_name: str, right_name: str) -> float:
        """Similarity of two attribute names (order-canonicalised)."""


def matrix_from_scores(
    left: Schema,
    right: Schema,
    scores: Mapping[tuple[Attribute, Attribute], float],
) -> SimilarityMatrix:
    """Build a matrix from an explicit score mapping (tests, fixtures)."""
    matrix = SimilarityMatrix(left, right)
    for (left_attr, right_attr), score in scores.items():
        matrix.set(left_attr, right_attr, score)
    return matrix
