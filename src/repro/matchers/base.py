"""Matcher interfaces and the similarity-matrix container.

A *first-line matcher* maps a pair of attributes to a similarity in [0, 1];
running one over two schemas yields a :class:`SimilarityMatrix`.  Second-line
components (ensembles, selectors — see :mod:`repro.matchers.ensemble`)
combine and threshold matrices into candidate correspondences.
"""

from __future__ import annotations

import abc
from typing import Iterator, Mapping

from ..core.correspondence import Correspondence, correspondence
from ..core.schema import Attribute, Schema


class SimilarityMatrix:
    """Dense pairwise similarities between two schemas' attributes."""

    def __init__(self, left: Schema, right: Schema):
        self.left = left
        self.right = right
        self._scores: dict[tuple[Attribute, Attribute], float] = {}

    def set(self, left_attr: Attribute, right_attr: Attribute, score: float) -> None:
        if not 0.0 <= score <= 1.0:
            raise ValueError(f"similarity {score} outside [0, 1]")
        self._scores[(left_attr, right_attr)] = score

    def get(self, left_attr: Attribute, right_attr: Attribute) -> float:
        return self._scores.get((left_attr, right_attr), 0.0)

    def items(self) -> Iterator[tuple[tuple[Attribute, Attribute], float]]:
        return iter(self._scores.items())

    def pairs_above(
        self, threshold: float
    ) -> list[tuple[Attribute, Attribute, float]]:
        """All attribute pairs whose similarity meets ``threshold``."""
        return [
            (left_attr, right_attr, score)
            for (left_attr, right_attr), score in self._scores.items()
            if score >= threshold
        ]

    def to_correspondences(
        self, threshold: float
    ) -> dict[Correspondence, float]:
        """Thresholded conversion into correspondence → confidence."""
        return {
            correspondence(left_attr, right_attr): score
            for left_attr, right_attr, score in self.pairs_above(threshold)
        }

    def __len__(self) -> int:
        return len(self._scores)


class Matcher(abc.ABC):
    """A first-line matcher: attribute-pair similarity in [0, 1]."""

    name: str = "matcher"

    @abc.abstractmethod
    def similarity(self, left: Attribute, right: Attribute) -> float:
        """Similarity of two attributes."""

    def match(self, left: Schema, right: Schema) -> SimilarityMatrix:
        """Score every attribute pair of two schemas."""
        matrix = SimilarityMatrix(left, right)
        for left_attr in left:
            for right_attr in right:
                matrix.set(left_attr, right_attr, self.similarity(left_attr, right_attr))
        return matrix


class CachedMatcher(Matcher):
    """Mixin-style base caching name-level similarities.

    Most first-line matchers depend only on the attribute *names*; schemas
    in a network reuse names heavily, so a name-level cache removes the bulk
    of repeated metric computation across the O(n²) schema pairs.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], float] = {}

    def similarity(self, left: Attribute, right: Attribute) -> float:
        key = (
            (left.name, right.name)
            if left.name <= right.name
            else (right.name, left.name)
        )
        cached = self._cache.get(key)
        if cached is None:
            cached = self._name_similarity(key[0], key[1])
            self._cache[key] = cached
        return cached

    @abc.abstractmethod
    def _name_similarity(self, left_name: str, right_name: str) -> float:
        """Similarity of two attribute names (order-canonicalised)."""


def matrix_from_scores(
    left: Schema,
    right: Schema,
    scores: Mapping[tuple[Attribute, Attribute], float],
) -> SimilarityMatrix:
    """Build a matrix from an explicit score mapping (tests, fixtures)."""
    matrix = SimilarityMatrix(left, right)
    for (left_attr, right_attr), score in scores.items():
        matrix.set(left_attr, right_attr, score)
    return matrix
