"""Domain lexicon for identifier word segmentation.

Matcher toolkits ship dictionaries so that concatenated identifiers
(``billingstate``, ``firstname``) can be segmented into words before token
comparison.  This lexicon covers the business/e-commerce/academic/web-form
vocabulary of the corpora plus general identifier glue words; it is a plain
frozenset so callers can extend it (``LEXICON | {"mytoken"}``) and hand the
result to :func:`repro.matchers.tokenization.tokenize`.
"""

from __future__ import annotations

#: Atomic (single-word) domain vocabulary used by the greedy segmenter.
LEXICON: frozenset[str] = frozenset(
    """
    about accept accessibility accommodation account acquisition act action
    activity address admission adults again age agent agree agreement aid
    allergies allow alternate alumnus amount and annual answer apartment
    applicant application applied approval approved approver areas arrival
    article attended attendees authorized authorizer availability available
    average award awarded awards background bank before bic bill billing
    birth birthday blocked box brand budget business buyer cabin campus can
    captcha card cardholder carrier case category cell center certificates
    certifications channel charge check children choice citizenship city
    civil class code college color colour comment comments commercial
    company competencies complete composite condition conditions conduct
    confirm confirmation consent consignee contact contract conviction
    correspondence cost count country county coupon course cover created
    creation credit creditworthiness criminal currency current curriculum
    customer cycle date day decision default degree delivery department
    departure depot description desired destination dietary diploma
    disability disciplinary discount distinctions distribution district
    dormitory driver driving dunning duns each earliest early earned
    education effective email emergency employee employees employer
    employment end enrollment entry essay established ethnic ethnicity
    event exam exempt expectation experience expiration expiry extended
    extracurricular facsimile family father fax fee feedback felony field
    financial find firm first fiscal flag fluency food for foreign forename
    form founding freight frequency from full gender gift given grade
    graduation grand grant group guardian guests head headcount
    headquarters hear heard high highest hold holder holding home homepage
    honors hours household housing how iban identifier immigration improve
    improvement income incorporation incoterms industry info information
    initial institution instructions intended interest interests
    international interview invoice involved item items job key keywords
    kind language last lead leadership legal letter level licence license
    likelihood limit line linkedin list location login loyalty mail mailbox
    mailing main major make manager manufacturer marital marketing math
    maximum measure membership message method middle military minimum minor
    mobile mode model modified most mother motivation municipality name
    nation nationality native needed needs net newsletter notes notice
    number objective occupation of office official often one opt order
    ordered organization origin out overall owner page parent parking part
    participated partner pass password payer payment people per percent
    period permanent permit person personal phone place point portfolio
    position post postal postcode preference preferences preferred prefix
    present previous price pricing primary prior priority procurement
    product profession professional proficiency profile program promo
    province purchase purchaser purchasing purpose qualification
    quantitative quantity query question race range rank rate rating
    reading reason rebate recent recommend recommendation recommender
    record reference references referral regarding region register
    registered registration relationship relocate relocation remark
    remarks reminder representative request requested require requirements
    requisition results resume return retype revenue risk road role rooms
    salary sales salutation samples sat satisfaction schedule scheduled
    scholarship school score search seat seating second secondary secret
    section sector security seller semester service session sex shift ship
    shipment shipper shipping since site size skills sku social sort sought
    source special stars start starting state statement status stock street
    student studied study subject submitted subscribe subtotal suggestions
    suite supplier surname swift symbol taken tariff tax telephone term
    terms territory test ticker ticket tier time timezone title to toefl
    tongue topic total town track tracking trading travel turnover two type
    unit university until update updated urgency user username valid vat
    vendor verbal verification veteran visa visit visited vitae volume
    warehouse warranty web website week weekly what where willing word work
    workshop would wrap wrapping writing year yearly years you your zip
    zone
    """.split()
)
