"""String similarity metrics, implemented from scratch.

These are the classic first-line measures schema matchers are built from
(cf. the COMA and AMC matcher libraries the paper uses): edit distance,
Jaro/Jaro-Winkler, q-grams, token-set overlap, longest common substring and
Monge-Elkan.  All similarity functions are symmetric and map into [0, 1]
with 1 meaning identical.
"""

from __future__ import annotations

from typing import Callable, Sequence


def levenshtein_distance(left: str, right: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner dimension for cache friendliness.
    if len(right) > len(left):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """1 − distance / max length; 1.0 for two empty strings."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity: transposition-aware common-character ratio."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, prefix_weight: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must lie in [0, 0.25]")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """The q-gram multiset of ``text``, optionally padded with ``#``."""
    if q < 1:
        raise ValueError("q must be positive")
    if pad:
        text = "#" * (q - 1) + text + "#" * (q - 1)
    if len(text) < q:
        return [text] if text else []
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def qgram_similarity(left: str, right: str, q: int = 3) -> float:
    """Dice coefficient over padded q-gram multisets."""
    left_grams = qgrams(left, q)
    right_grams = qgrams(right, q)
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    overlap = 0
    counts: dict[str, int] = {}
    for gram in left_grams:
        counts[gram] = counts.get(gram, 0) + 1
    for gram in right_grams:
        remaining = counts.get(gram, 0)
        if remaining:
            overlap += 1
            counts[gram] = remaining - 1
    return 2.0 * overlap / (len(left_grams) + len(right_grams))


def jaccard_similarity(left: Sequence[str], right: Sequence[str]) -> float:
    """Jaccard index of two token collections (as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    union = left_set | right_set
    return len(left_set & right_set) / len(union)


def dice_similarity(left: Sequence[str], right: Sequence[str]) -> float:
    """Dice coefficient of two token collections (as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return 2.0 * len(left_set & right_set) / (len(left_set) + len(right_set))


def longest_common_substring(left: str, right: str) -> int:
    """Length of the longest contiguous common substring."""
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    best = 0
    for left_char in left:
        current = [0] * (len(right) + 1)
        for j, right_char in enumerate(right, start=1):
            if left_char == right_char:
                current[j] = previous[j - 1] + 1
                best = max(best, current[j])
        previous = current
    return best


def lcs_similarity(left: str, right: str) -> float:
    """Longest common substring normalised by the shorter length."""
    shortest = min(len(left), len(right))
    if shortest == 0:
        return 1.0 if not left and not right else 0.0
    return longest_common_substring(left, right) / shortest


def monge_elkan_similarity(
    left_tokens: Sequence[str],
    right_tokens: Sequence[str],
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Monge-Elkan: average best inner similarity per left token, symmetrised.

    The raw Monge-Elkan measure is asymmetric; we take the mean of both
    directions so the result can back a symmetric matcher.
    """
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0

    def directed(a: Sequence[str], b: Sequence[str]) -> float:
        return sum(max(inner(x, y) for y in b) for x in a) / len(a)

    return (directed(left_tokens, right_tokens) + directed(right_tokens, left_tokens)) / 2.0


def prefix_similarity(left: str, right: str) -> float:
    """Common-prefix length over the shorter string length."""
    shortest = min(len(left), len(right))
    if shortest == 0:
        return 1.0 if not left and not right else 0.0
    prefix = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char:
            break
        prefix += 1
    return prefix / shortest


def suffix_similarity(left: str, right: str) -> float:
    """Common-suffix length over the shorter string length."""
    return prefix_similarity(left[::-1], right[::-1])
