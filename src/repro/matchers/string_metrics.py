"""String similarity metrics, implemented from scratch.

These are the classic first-line measures schema matchers are built from
(cf. the COMA and AMC matcher libraries the paper uses): edit distance,
Jaro/Jaro-Winkler, q-grams, token-set overlap, longest common substring and
Monge-Elkan.  All similarity functions are symmetric and map into [0, 1]
with 1 meaning identical.

Two implementations coexist on purpose.  The scalar functions in the first
half of the module are the *reference* semantics; the ``*_matrix`` kernels
in the second half compute whole similarity blocks at once — batched over
the deduplicated unique-pair set with numpy (and scipy.sparse incidence
products where available) — and are pinned to the scalar functions by
property tests.  The batch kernels back :meth:`Matcher.similarity_matrix`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

try:  # scipy is optional: incidence products fall back to dense numpy.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None


def levenshtein_distance(left: str, right: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner dimension for cache friendliness.
    if len(right) > len(left):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """1 − distance / max length; 1.0 for two empty strings."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity: transposition-aware common-character ratio."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, prefix_weight: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must lie in [0, 0.25]")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """The q-gram multiset of ``text``, optionally padded with ``#``."""
    if q < 1:
        raise ValueError("q must be positive")
    if pad:
        text = "#" * (q - 1) + text + "#" * (q - 1)
    if len(text) < q:
        return [text] if text else []
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def qgram_similarity(left: str, right: str, q: int = 3) -> float:
    """Dice coefficient over padded q-gram multisets."""
    left_grams = qgrams(left, q)
    right_grams = qgrams(right, q)
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    overlap = 0
    counts: dict[str, int] = {}
    for gram in left_grams:
        counts[gram] = counts.get(gram, 0) + 1
    for gram in right_grams:
        remaining = counts.get(gram, 0)
        if remaining:
            overlap += 1
            counts[gram] = remaining - 1
    return 2.0 * overlap / (len(left_grams) + len(right_grams))


def jaccard_similarity(left: Sequence[str], right: Sequence[str]) -> float:
    """Jaccard index of two token collections (as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    union = left_set | right_set
    return len(left_set & right_set) / len(union)


def dice_similarity(left: Sequence[str], right: Sequence[str]) -> float:
    """Dice coefficient of two token collections (as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return 2.0 * len(left_set & right_set) / (len(left_set) + len(right_set))


def longest_common_substring(left: str, right: str) -> int:
    """Length of the longest contiguous common substring."""
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    best = 0
    for left_char in left:
        current = [0] * (len(right) + 1)
        for j, right_char in enumerate(right, start=1):
            if left_char == right_char:
                current[j] = previous[j - 1] + 1
                best = max(best, current[j])
        previous = current
    return best


def lcs_similarity(left: str, right: str) -> float:
    """Longest common substring normalised by the shorter length."""
    shortest = min(len(left), len(right))
    if shortest == 0:
        return 1.0 if not left and not right else 0.0
    return longest_common_substring(left, right) / shortest


def monge_elkan_similarity(
    left_tokens: Sequence[str],
    right_tokens: Sequence[str],
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Monge-Elkan: average best inner similarity per left token, symmetrised.

    The raw Monge-Elkan measure is asymmetric; we take the mean of both
    directions so the result can back a symmetric matcher.
    """
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0

    def directed(a: Sequence[str], b: Sequence[str]) -> float:
        return sum(max(inner(x, y) for y in b) for x in a) / len(a)

    return (directed(left_tokens, right_tokens) + directed(right_tokens, left_tokens)) / 2.0


def prefix_similarity(left: str, right: str) -> float:
    """Common-prefix length over the shorter string length."""
    shortest = min(len(left), len(right))
    if shortest == 0:
        return 1.0 if not left and not right else 0.0
    prefix = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char:
            break
        prefix += 1
    return prefix / shortest


def suffix_similarity(left: str, right: str) -> float:
    """Common-suffix length over the shorter string length."""
    return prefix_similarity(left[::-1], right[::-1])


# ---------------------------------------------------------------------------
# Batch kernels: whole similarity blocks at once.
#
# Every kernel below reproduces its scalar counterpart exactly (same
# formulas, same division order) so the matrix path can be pinned against
# the scalar path to 1e-9.  String pairs are deduplicated before the heavy
# kernels run: attribute names repeat across the O(n²) schema pairs of a
# network, so the unique-pair set is far smaller than the naive pair count.
# ---------------------------------------------------------------------------


def _encode_pool(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """One shared codepoint matrix for a *deduplicated* string pool.

    Encoding is the per-string cost of the batch metrics; doing it once per
    unique string (rather than once per pair occurrence) is what keeps the
    unique-pair kernels cheap.  Pad is ``-1`` (codepoints are non-negative)
    on both sides of a comparison; the kernels mask by string length
    wherever pad-equals-pad could matter.
    """
    count = len(strings)
    width = max((len(s) for s in strings), default=0)
    codes = np.full((count, width), -1, dtype=np.int64)
    for i, text in enumerate(strings):
        if text:
            codes[i, : len(text)] = np.frombuffer(
                text.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int64)
    lengths = np.fromiter((len(s) for s in strings), count=count, dtype=np.int64)
    return codes, lengths


PairCache = dict[tuple[str, str], float]


def _unique_pair_matrix(
    left: Sequence[str],
    right: Sequence[str],
    kernel: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    cache: PairCache | None = None,
) -> np.ndarray:
    """Evaluate a symmetric pairwise kernel over the deduplicated pair set.

    ``kernel(codes, lengths, first, second)`` receives the pooled codepoint
    matrix plus aligned index arrays (one entry per unique unordered pair)
    and returns one value per pair; the result is broadcast back to the full
    ``len(left) × len(right)`` block.  ``cache`` (string-pair → value, keys
    lexicographically canonicalised) persists values across calls — names
    repeat across the edges of a network, so later edges only pay for pairs
    they introduce.
    """
    n_left, n_right = len(left), len(right)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right), dtype=np.float64)
    pool: dict[str, int] = {}
    for text in left:
        pool.setdefault(text, len(pool))
    for text in right:
        pool.setdefault(text, len(pool))
    strings = list(pool)
    left_ids = np.fromiter((pool[s] for s in left), count=n_left, dtype=np.int64)
    right_ids = np.fromiter((pool[s] for s in right), count=n_right, dtype=np.int64)
    low = np.minimum(left_ids[:, None], right_ids[None, :])
    high = np.maximum(left_ids[:, None], right_ids[None, :])
    keys = (low * len(strings) + high).ravel()
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    first, second = np.divmod(unique_keys, len(strings))
    codes, lengths = _encode_pool(strings)
    if cache is None:
        values = np.asarray(kernel(codes, lengths, first, second), dtype=np.float64)
    else:
        values = np.empty(len(unique_keys), dtype=np.float64)
        missing: list[int] = []
        pair_keys: list[tuple[str, str]] = []
        for idx, (i, j) in enumerate(zip(first.tolist(), second.tolist())):
            a, b = strings[i], strings[j]
            key = (a, b) if a <= b else (b, a)
            pair_keys.append(key)
            cached = cache.get(key)
            if cached is None:
                missing.append(idx)
            else:
                values[idx] = cached
        if missing:
            miss = np.asarray(missing, dtype=np.int64)
            computed = np.asarray(
                kernel(codes, lengths, first[miss], second[miss]),
                dtype=np.float64,
            )
            values[miss] = computed
            for pos, idx in enumerate(missing):
                cache[pair_keys[idx]] = float(computed[pos])
    return values[inverse].reshape(n_left, n_right)


def _chunked_pairs(
    kernel: Callable[..., np.ndarray],
    codes: np.ndarray,
    lengths: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """Run a pair kernel in bounded chunks along the pair axis.

    The deduplicated pair set grows ~U²/2 in the number of unique names, so
    the per-pair work arrays (DP rows, match bitmaps) are capped at ~4M
    cells per chunk regardless of corpus size.  Chunking also re-trims the
    kernel's width to each chunk's longest string.
    """
    count = len(first)
    chunk = max(1, int(4_000_000 // max(1, codes.shape[1])))
    if count <= chunk:
        return kernel(codes, lengths, first, second)
    out = np.empty(count, dtype=np.float64)
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        out[start:stop] = kernel(
            codes, lengths, first[start:stop], second[start:stop]
        )
    return out


def _levenshtein_pairs(
    codes: np.ndarray,
    lengths: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """Levenshtein *similarity* for index-aligned pairs of pooled strings.

    DP-vectorised over the batch: the classic row recurrence has a
    sequential dependency along the inner dimension (insertions); it is
    resolved with the min-plus prefix-scan trick —
    ``cur[j] = j + min_accumulate(cand[k] - k)`` — so each DP row is one
    vectorised sweep over all pairs at once.
    """
    count = len(first)
    if count == 0:
        return np.zeros(0, dtype=np.float64)
    len_a, len_b = lengths[first], lengths[second]
    width_a = int(len_a.max())
    width_b = int(len_b.max())
    codes_a = codes[first, :width_a]
    codes_b = codes[second, :width_b]
    distances = np.zeros(count, dtype=np.int64)
    distances[len_a == 0] = len_b[len_a == 0]
    col = np.arange(width_b + 1, dtype=np.int64)
    previous = np.broadcast_to(col, (count, width_b + 1)).copy()
    current = np.empty_like(previous)
    for i in range(1, width_a + 1):
        cost = codes_a[:, i - 1][:, None] != codes_b
        current[:, 0] = i
        np.minimum(
            previous[:, 1:] + 1, previous[:, :-1] + cost, out=current[:, 1:]
        )
        current -= col
        np.minimum.accumulate(current, axis=1, out=current)
        current += col
        done = len_a == i
        if done.any():
            distances[done] = current[done, len_b[done]]
        previous, current = current, previous
    longest = np.maximum(len_a, len_b).astype(np.float64)
    similarity = np.ones(count, dtype=np.float64)
    nonempty = longest > 0
    similarity[nonempty] = 1.0 - distances[nonempty] / longest[nonempty]
    return similarity


def levenshtein_similarity_matrix(
    left: Sequence[str],
    right: Sequence[str],
    cache: PairCache | None = None,
) -> np.ndarray:
    """Batch :func:`levenshtein_similarity` over all left × right pairs."""
    return _unique_pair_matrix(
        left,
        right,
        lambda codes, lengths, first, second: _chunked_pairs(
            _levenshtein_pairs, codes, lengths, first, second
        ),
        cache,
    )


def _jaro_winkler_pairs(
    codes: np.ndarray,
    lengths: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
    prefix_weight: float = 0.1,
    max_prefix: int = 4,
) -> np.ndarray:
    """Jaro-Winkler for index-aligned pairs of pooled strings.

    The greedy match phase loops over left positions (bounded by the longest
    string) updating all pairs' match bitmaps at once — an exact replication
    of the scalar greedy scan, including first-eligible tie resolution.
    """
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must lie in [0, 0.25]")
    count = len(first)
    if count == 0:
        return np.zeros(0, dtype=np.float64)
    len_a, len_b = lengths[first], lengths[second]
    width_a = int(len_a.max())
    width_b = int(len_b.max())
    codes_a = codes[first, :width_a]
    codes_b = codes[second, :width_b]
    either_empty = (len_a == 0) | (len_b == 0)
    both_empty = (len_a == 0) & (len_b == 0)
    if width_a == 0 or width_b == 0:
        return np.where(both_empty, 1.0, 0.0)

    window = np.maximum(np.maximum(len_a, len_b) // 2 - 1, 0)
    left_matched = np.zeros((count, width_a), dtype=bool)
    right_matched = np.zeros((count, width_b), dtype=bool)
    col = np.arange(width_b)
    for i in range(width_a):
        active = len_a > i
        if not active.any():
            break
        start = i - window
        end = np.minimum(i + window + 1, len_b)
        eligible = (
            (col[None, :] >= start[:, None])
            & (col[None, :] < end[:, None])
            & ~right_matched
            & (codes_b == codes_a[:, i][:, None])
            & active[:, None]
        )
        hit = eligible.any(axis=1)
        first_hit = eligible.argmax(axis=1)
        right_matched[hit, first_hit[hit]] = True
        left_matched[hit, i] = True
    matches = left_matched.sum(axis=1)

    # Transpositions: compare the matched characters of both sides in
    # positional order (stable sort floats matched positions to the front).
    order_a = np.argsort(~left_matched, axis=1, kind="stable")
    order_b = np.argsort(~right_matched, axis=1, kind="stable")
    matched_a = np.take_along_axis(codes_a, order_a, axis=1)
    matched_b = np.take_along_axis(codes_b, order_b, axis=1)
    compare = min(width_a, width_b)
    valid = np.arange(compare)[None, :] < matches[:, None]
    transpositions = (
        (matched_a[:, :compare] != matched_b[:, :compare]) & valid
    ).sum(axis=1) // 2

    m = matches.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        jaro = (m / len_a + m / len_b + (m - transpositions) / m) / 3.0
    jaro = np.where(matches == 0, 0.0, jaro)
    jaro[either_empty] = 0.0
    jaro[both_empty] = 1.0

    prefix_cap = min(max_prefix, width_a, width_b)
    if prefix_cap > 0:
        # Shared pad on both sides: bound the scan by the shorter length so
        # pad-equals-pad positions never count as common prefix.
        agreement = (codes_a[:, :prefix_cap] == codes_b[:, :prefix_cap]) & (
            np.arange(prefix_cap)[None, :]
            < np.minimum(len_a, len_b)[:, None]
        )
        prefix = np.logical_and.accumulate(agreement, axis=1).sum(axis=1)
        prefix = np.minimum(prefix, max_prefix)
    else:
        prefix = np.zeros(count, dtype=np.int64)
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaro_winkler_similarity_matrix(
    left: Sequence[str],
    right: Sequence[str],
    prefix_weight: float = 0.1,
    max_prefix: int = 4,
    cache: PairCache | None = None,
) -> np.ndarray:
    """Batch :func:`jaro_winkler_similarity` over all left × right pairs."""
    return _unique_pair_matrix(
        left,
        right,
        lambda codes, lengths, first, second: _chunked_pairs(
            lambda c, l, f, s: _jaro_winkler_pairs(
                c, l, f, s, prefix_weight, max_prefix
            ),
            codes,
            lengths,
            first,
            second,
        ),
        cache,
    )


def _incidence_product(
    left_features: Sequence[Iterable],
    right_features: Sequence[Iterable],
    weight: Callable[[object], float] | None = None,
) -> np.ndarray:
    """``Σ_f w(f)·1[f ∈ L]·1[f ∈ R]`` for every (left, right) row pair.

    Built as a sparse feature-incidence matrix product (dense numpy when
    scipy is unavailable).  ``weight`` scales the *left* incidence rows, so
    the product is the weighted intersection; with ``weight=None`` it is the
    plain intersection size.  Feature iterables must be duplicate-free.
    """
    vocabulary: dict = {}

    def compress(rows: Sequence[Iterable], weighted: bool):
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for features in rows:
            for feature in features:
                indices.append(vocabulary.setdefault(feature, len(vocabulary)))
                data.append(weight(feature) if weighted else 1.0)
            indptr.append(len(indices))
        return indptr, indices, data

    left_csr = compress(left_features, weight is not None)
    right_csr = compress(right_features, False)
    n_features = max(len(vocabulary), 1)
    if _scipy_sparse is not None:
        left_mat = _scipy_sparse.csr_matrix(
            (left_csr[2], left_csr[1], left_csr[0]),
            shape=(len(left_features), n_features),
        )
        right_mat = _scipy_sparse.csr_matrix(
            (right_csr[2], right_csr[1], right_csr[0]),
            shape=(len(right_features), n_features),
        )
        return np.asarray((left_mat @ right_mat.T).todense(), dtype=np.float64)
    left_dense = np.zeros((len(left_features), n_features))
    right_dense = np.zeros((len(right_features), n_features))
    for row in range(len(left_features)):
        cols = left_csr[1][left_csr[0][row] : left_csr[0][row + 1]]
        left_dense[row, cols] = left_csr[2][left_csr[0][row] : left_csr[0][row + 1]]
    for row in range(len(right_features)):
        cols = right_csr[1][right_csr[0][row] : right_csr[0][row + 1]]
        right_dense[row, cols] = 1.0
    return left_dense @ right_dense.T


def jaccard_matrix(
    left_sets: Sequence[frozenset], right_sets: Sequence[frozenset]
) -> np.ndarray:
    """Batch :func:`jaccard_similarity` over precomputed token sets."""
    intersection = _incidence_product(left_sets, right_sets)
    size_left = np.fromiter(
        (len(s) for s in left_sets), count=len(left_sets), dtype=np.float64
    )
    size_right = np.fromiter(
        (len(s) for s in right_sets), count=len(right_sets), dtype=np.float64
    )
    union = size_left[:, None] + size_right[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = intersection / union
    similarity[union == 0] = 1.0  # both sides empty
    return similarity


def weighted_jaccard_matrix(
    left_sets: Sequence[frozenset],
    right_sets: Sequence[frozenset],
    weight: Callable[[str], float],
) -> np.ndarray:
    """Batch IDF-weighted Jaccard (the :class:`TfIdfTokenMatcher` measure).

    ``similarity = Σ_{t ∈ A∩B} w(t) / Σ_{t ∈ A∪B} w(t)``, computed as a
    weighted incidence product for the numerator and row-weight sums for the
    denominator.  Clipped to [0, 1] to absorb last-ulp drift of the float
    summation orders.
    """
    intersection = _incidence_product(left_sets, right_sets, weight=weight)
    weight_left = np.fromiter(
        (sum(weight(t) for t in s) for s in left_sets),
        count=len(left_sets),
        dtype=np.float64,
    )
    weight_right = np.fromiter(
        (sum(weight(t) for t in s) for s in right_sets),
        count=len(right_sets),
        dtype=np.float64,
    )
    union = weight_left[:, None] + weight_right[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = np.where(union > 0.0, intersection / union, 0.0)
    empty_left = np.fromiter(
        (len(s) == 0 for s in left_sets), count=len(left_sets), dtype=bool
    )
    empty_right = np.fromiter(
        (len(s) == 0 for s in right_sets), count=len(right_sets), dtype=bool
    )
    similarity[np.ix_(empty_left, empty_right)] = 1.0
    return np.clip(similarity, 0.0, 1.0)


def dice_multiset_matrix(
    left_counts: Sequence[Mapping[str, int]],
    right_counts: Sequence[Mapping[str, int]],
) -> np.ndarray:
    """Batch Dice over multisets (the q-gram measure), via occurrence keys.

    ``Σ_g min(a_g, b_g)`` is not a plain incidence product, but expanding
    the k-th occurrence of gram ``g`` into the distinct feature ``(g, k)``
    makes it one: a multiset holds ``(g, k)`` iff it has > k copies of ``g``.
    """

    def expand(counts: Mapping[str, int]) -> list[tuple[str, int]]:
        return [(gram, k) for gram, n in counts.items() for k in range(n)]

    overlap = _incidence_product(
        [expand(c) for c in left_counts], [expand(c) for c in right_counts]
    )
    total_left = np.fromiter(
        (sum(c.values()) for c in left_counts),
        count=len(left_counts),
        dtype=np.float64,
    )
    total_right = np.fromiter(
        (sum(c.values()) for c in right_counts),
        count=len(right_counts),
        dtype=np.float64,
    )
    denominator = total_left[:, None] + total_right[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = 2.0 * overlap / denominator
    similarity[denominator == 0] = 1.0  # both sides gram-free
    return similarity


def _prefix_pairs(
    codes: np.ndarray,
    lengths: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """Common-prefix similarity for index-aligned pairs of pooled strings."""
    count = len(first)
    values = np.zeros(count, dtype=np.float64)
    if count == 0:
        return values
    len_a, len_b = lengths[first], lengths[second]
    shortest = np.minimum(len_a, len_b)
    width = int(shortest.max())
    if width > 0:
        codes_a = codes[first, :width]
        codes_b = codes[second, :width]
        # Shared pad on both sides: bound by the shorter length so
        # pad-equals-pad never counts as agreement.
        agreement = (codes_a == codes_b) & (
            np.arange(width)[None, :] < shortest[:, None]
        )
        prefix = np.logical_and.accumulate(agreement, axis=1).sum(axis=1)
        nonempty = shortest > 0
        values[nonempty] = prefix[nonempty] / shortest[nonempty]
    values[(len_a == 0) & (len_b == 0)] = 1.0
    return values


def prefix_similarity_matrix(
    left: Sequence[str],
    right: Sequence[str],
    cache: PairCache | None = None,
) -> np.ndarray:
    """Batch :func:`prefix_similarity` over all left × right pairs."""
    return _unique_pair_matrix(
        left,
        right,
        lambda codes, lengths, first, second: _chunked_pairs(
            _prefix_pairs, codes, lengths, first, second
        ),
        cache,
    )


def _lcs_pairs(
    codes: np.ndarray,
    lengths: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """LCS-substring similarity for index-aligned pairs of pooled strings.

    The classic quadratic DP — ``cur[j] = prev[j-1] + 1`` where characters
    match, else 0 — carries no dependency along the inner dimension, so each
    row is one whole-batch vectorised sweep: equality matrix, shifted
    previous row, running best.  Pad positions are masked explicitly (the
    pool pads both sides with the same sentinel, so pad-equals-pad would
    otherwise count as a common substring).
    """
    count = len(first)
    if count == 0:
        return np.zeros(0, dtype=np.float64)
    len_a, len_b = lengths[first], lengths[second]
    shortest = np.minimum(len_a, len_b).astype(np.float64)
    both_empty = (len_a == 0) & (len_b == 0)
    width_a = int(len_a.max())
    width_b = int(len_b.max())
    if width_a == 0 or width_b == 0:
        return np.where(both_empty, 1.0, 0.0)
    codes_a = codes[first, :width_a]
    codes_b = codes[second, :width_b]
    valid_b = np.arange(width_b)[None, :] < len_b[:, None]
    best = np.zeros(count, dtype=np.int64)
    previous = np.zeros((count, width_b), dtype=np.int64)
    current = np.empty_like(previous)
    for i in range(width_a):
        active = len_a > i
        if not active.any():
            break
        match = (codes_b == codes_a[:, i][:, None]) & valid_b & active[:, None]
        current[:, 0] = match[:, 0]
        np.multiply(previous[:, :-1] + 1, match[:, 1:], out=current[:, 1:])
        np.maximum(best, current.max(axis=1), out=best)
        previous, current = current, previous
    similarity = np.zeros(count, dtype=np.float64)
    nonempty = shortest > 0
    similarity[nonempty] = best[nonempty] / shortest[nonempty]
    similarity[both_empty] = 1.0
    return similarity


def lcs_similarity_matrix(
    left: Sequence[str],
    right: Sequence[str],
    cache: PairCache | None = None,
) -> np.ndarray:
    """Batch :func:`lcs_similarity` over all left × right pairs."""
    return _unique_pair_matrix(
        left,
        right,
        lambda codes, lengths, first, second: _chunked_pairs(
            _lcs_pairs, codes, lengths, first, second
        ),
        cache,
    )


def monge_elkan_matrix(
    left_tokens: Sequence[Sequence[str]],
    right_tokens: Sequence[Sequence[str]],
    inner_cache: PairCache | None = None,
) -> np.ndarray:
    """Batch symmetrised Monge-Elkan with the Jaro-Winkler inner metric.

    The inner metric is evaluated once per unique token pair (tokens repeat
    massively across attribute names); the per-name-pair best-match means
    are then gathered from the token-pair matrix with padded index arrays.
    """
    n_left, n_right = len(left_tokens), len(right_tokens)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right), dtype=np.float64)
    out = np.zeros((n_left, n_right), dtype=np.float64)
    len_a = np.fromiter(
        (len(t) for t in left_tokens), count=n_left, dtype=np.float64
    )
    len_b = np.fromiter(
        (len(t) for t in right_tokens), count=n_right, dtype=np.float64
    )

    vocab_left: dict[str, int] = {}
    for tokens in left_tokens:
        for token in tokens:
            vocab_left.setdefault(token, len(vocab_left))
    vocab_right: dict[str, int] = {}
    for tokens in right_tokens:
        for token in tokens:
            vocab_right.setdefault(token, len(vocab_right))

    if vocab_left and vocab_right:
        inner = jaro_winkler_similarity_matrix(
            list(vocab_left), list(vocab_right), cache=inner_cache
        )
        width_a = max(max((len(t) for t in left_tokens), default=0), 1)
        width_b = max(max((len(t) for t in right_tokens), default=0), 1)
        index_a = np.zeros((n_left, width_a), dtype=np.int64)
        mask_a = np.zeros((n_left, width_a), dtype=bool)
        for i, tokens in enumerate(left_tokens):
            index_a[i, : len(tokens)] = [vocab_left[t] for t in tokens]
            mask_a[i, : len(tokens)] = True
        index_b = np.zeros((n_right, width_b), dtype=np.int64)
        mask_b = np.zeros((n_right, width_b), dtype=bool)
        for j, tokens in enumerate(right_tokens):
            index_b[j, : len(tokens)] = [vocab_right[t] for t in tokens]
            mask_b[j, : len(tokens)] = True

        chunk = max(1, int(4_000_000 // max(1, n_right * width_a * width_b)))
        with np.errstate(divide="ignore", invalid="ignore"):
            for start in range(0, n_left, chunk):
                stop = min(start + chunk, n_left)
                gathered = inner[
                    index_a[start:stop][:, None, :, None],
                    index_b[None, :, None, :],
                ]
                gathered = np.where(
                    mask_b[None, :, None, :], gathered, -np.inf
                )
                best_ab = gathered.max(axis=3)
                directed_ab = np.where(
                    mask_a[start:stop][:, None, :], best_ab, 0.0
                ).sum(axis=2) / len_a[start:stop][:, None]
                best_ba = np.where(
                    mask_a[start:stop][:, None, :, None], gathered, -np.inf
                ).max(axis=2)
                directed_ba = np.where(
                    mask_b[None, :, :], best_ba, 0.0
                ).sum(axis=2) / len_b[None, :]
                out[start:stop] = (directed_ab + directed_ba) / 2.0

    empty_left = len_a == 0
    empty_right = len_b == 0
    out[empty_left, :] = 0.0
    out[:, empty_right] = 0.0
    out[np.ix_(empty_left, empty_right)] = 1.0
    return np.clip(out, 0.0, 1.0)
