"""Schema-matcher substrate: the COMA++/AMC stand-ins of the evaluation.

First-line matchers score attribute pairs; ensembles aggregate them;
selectors extract candidate correspondences; pipelines run the whole stack
over schema pairs or entire networks.

The layer is batch-first: matchers compute whole schema-pair blocks via
``similarity_matrix`` (vectorised kernels in
:mod:`~repro.matchers.string_metrics` over profiles from the unique-name
registry, :mod:`~repro.matchers.registry`), ensembles and selectors reduce
those blocks as numpy arrays, and ``MatcherPipeline.match_network``
deduplicates matcher work across the edges of the interaction graph.  The
scalar ``similarity`` methods remain the reference semantics that property
tests pin the batch kernels against.
"""

from .base import CachedMatcher, Matcher, SimilarityMatrix, matrix_from_scores
from .ensemble import (
    EnsembleMatcher,
    MaxDeltaSelector,
    Selector,
    StableMarriageSelector,
    ThresholdSelector,
    TopKSelector,
    harmonic_mean,
    match_pair,
    maximum,
    register_aggregator,
    weighted_average,
)
from .name_matchers import (
    EditDistanceMatcher,
    JaroWinklerMatcher,
    MongeElkanMatcher,
    NGramMatcher,
    PrefixSuffixMatcher,
    SubstringMatcher,
    TokenMatcher,
)
from .pipeline import (
    PIPELINES,
    MatcherPipeline,
    amc_like,
    coma_like,
    simple_threshold,
)
from .semantic import (
    DEFAULT_SYNONYM_RINGS,
    DataTypeMatcher,
    SynonymMatcher,
    Thesaurus,
)
from .tfidf import TfIdfTokenMatcher

__all__ = [
    "CachedMatcher",
    "DEFAULT_SYNONYM_RINGS",
    "DataTypeMatcher",
    "EditDistanceMatcher",
    "EnsembleMatcher",
    "JaroWinklerMatcher",
    "Matcher",
    "MatcherPipeline",
    "MaxDeltaSelector",
    "MongeElkanMatcher",
    "NGramMatcher",
    "PIPELINES",
    "PrefixSuffixMatcher",
    "Selector",
    "SimilarityMatrix",
    "StableMarriageSelector",
    "SubstringMatcher",
    "SynonymMatcher",
    "TfIdfTokenMatcher",
    "Thesaurus",
    "ThresholdSelector",
    "TokenMatcher",
    "TopKSelector",
    "amc_like",
    "coma_like",
    "harmonic_mean",
    "match_pair",
    "matrix_from_scores",
    "maximum",
    "register_aggregator",
    "simple_threshold",
    "weighted_average",
]
