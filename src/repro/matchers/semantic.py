"""Synonym-aware and data-type first-line matchers.

``SynonymMatcher`` scores token overlap modulo a thesaurus of synonym rings
(two tokens in the same ring count as equal), the classic dictionary-based
component of matcher toolkits.  ``DataTypeMatcher`` compares declared
attribute types through a compatibility table.  Both implement the batch
``similarity_matrix`` API: synonym overlap as a folded-token incidence
product, type compatibility as a lookup table over the distinct types.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.schema import Attribute
from . import registry, string_metrics
from .base import CachedMatcher, Matcher

#: Built-in synonym rings covering the domains of the paper's four datasets
#: (business partners, purchase orders, university application forms, web
#: forms).  Each inner tuple is one ring of interchangeable tokens.
#: Rings are over *atomic* tokens — the tokenizer segments concatenated
#: identifiers (``postalcode`` → ``postal code``) before ring lookup.
DEFAULT_SYNONYM_RINGS: tuple[tuple[str, ...], ...] = (
    ("account", "acct"),
    ("address", "location", "residence"),
    ("amount", "total", "sum", "value"),
    ("birth", "birthday"),
    ("buyer", "purchaser", "customer", "client", "consumer"),
    ("category", "type", "kind", "class"),
    ("city", "town", "municipality"),
    ("comment", "note", "remark", "memo", "remarks", "comments", "notes"),
    ("company", "organization", "firm", "business", "enterprise"),
    ("cost", "price", "charge", "fee", "rate"),
    ("country", "nation"),
    ("county", "district", "region", "province"),
    ("date", "day"),
    ("delivery", "shipping", "shipment", "dispatch"),
    ("description", "details", "info", "information"),
    ("discount", "rebate", "reduction"),
    ("email", "mail"),
    ("employee", "staff", "worker"),
    ("end", "finish", "close", "expiry", "expiration"),
    ("gender", "sex"),
    ("grade", "score", "mark", "result"),
    ("identifier", "id", "code", "key", "number"),
    ("invoice", "bill", "billing"),
    ("item", "product", "article", "good", "goods", "position"),
    ("major", "concentration", "discipline", "program"),
    ("manager", "supervisor", "lead"),
    ("mobile", "cell"),
    ("name", "title", "label"),
    ("payment", "remittance"),
    ("phone", "telephone", "tel"),
    ("quantity", "count", "units"),
    ("salutation", "greeting", "prefix"),
    ("school", "college", "university", "institution"),
    ("start", "begin", "open", "effective", "commencement"),
    ("status", "state", "condition"),
    ("street", "road", "avenue"),
    ("supplier", "vendor", "seller", "provider"),
    ("surname", "last", "family"),
    ("tax", "vat", "duty", "levy"),
    ("term", "semester", "session", "quarter"),
    ("zip", "postal", "post", "postcode"),
)


class Thesaurus:
    """Token → synonym-ring lookup built from synonym rings."""

    def __init__(self, rings: Iterable[tuple[str, ...]] = DEFAULT_SYNONYM_RINGS):
        self._ring_of: dict[str, int] = {}
        for ring_id, ring in enumerate(rings):
            for token in ring:
                # A token may appear in several rings ("state"); the first
                # ring wins, which keeps lookup deterministic.
                self._ring_of.setdefault(token.lower(), ring_id)

    def canonical(self, token: str) -> str:
        """The token's ring id (as a string) or the token itself."""
        ring = self._ring_of.get(token.lower())
        return f"ring:{ring}" if ring is not None else token.lower()

    def are_synonyms(self, left: str, right: str) -> bool:
        """Whether two tokens share a ring (or are equal)."""
        if left.lower() == right.lower():
            return True
        left_ring = self._ring_of.get(left.lower())
        return left_ring is not None and left_ring == self._ring_of.get(right.lower())


class SynonymMatcher(CachedMatcher):
    """Jaccard of token sets after folding synonyms to ring identifiers."""

    name = "synonym"

    def __init__(self, thesaurus: Thesaurus | None = None):
        super().__init__()
        self.thesaurus = thesaurus or Thesaurus()
        self._folded_cache: dict[str, frozenset[str]] = {}

    def _folded_tokens(self, name: str) -> frozenset[str]:
        """Ring-folded token set of a name, memoised per distinct name."""
        return registry.folded_token_set(name, self.thesaurus, self._folded_cache)

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        left_tokens = self._folded_tokens(left_name)
        right_tokens = self._folded_tokens(right_name)
        if not left_tokens and not right_tokens:
            return 1.0
        union = left_tokens | right_tokens
        if not union:
            return 0.0
        return len(left_tokens & right_tokens) / len(union)

    def _name_similarity_matrix(
        self, left_names: Sequence[str], right_names: Sequence[str]
    ) -> np.ndarray:
        return string_metrics.jaccard_matrix(
            [self._folded_tokens(name) for name in left_names],
            [self._folded_tokens(name) for name in right_names],
        )


#: Pairs of distinct-but-compatible type families.
_COMPATIBLE_TYPES: frozenset[frozenset[str]] = frozenset(
    {
        frozenset({"integer", "decimal"}),
        frozenset({"integer", "string"}),
        frozenset({"decimal", "string"}),
        frozenset({"date", "datetime"}),
        frozenset({"date", "string"}),
        frozenset({"boolean", "string"}),
    }
)


class DataTypeMatcher(Matcher):
    """Declared-type compatibility: 1.0 equal, 0.5 compatible, else 0.

    Attributes without a declared type score the neutral 0.5 so the ensemble
    neither rewards nor punishes missing metadata.
    """

    name = "data-type"

    depends_on = ("data_type",)

    @staticmethod
    def _type_score(left_type: str | None, right_type: str | None) -> float:
        if left_type is None or right_type is None:
            return 0.5
        if left_type == right_type:
            return 1.0
        pair = frozenset({left_type, right_type})
        return 0.5 if pair in _COMPATIBLE_TYPES else 0.0

    def similarity(self, left: Attribute, right: Attribute) -> float:
        return self._type_score(left.data_type, right.data_type)

    def similarity_matrix(
        self,
        left_attrs: Sequence[Attribute],
        right_attrs: Sequence[Attribute],
    ) -> np.ndarray:
        """Type-compatibility block via a distinct-type lookup table."""
        left_types = [attr.data_type for attr in left_attrs]
        right_types = [attr.data_type for attr in right_attrs]
        pool: dict[str | None, int] = {}
        for declared in left_types:
            pool.setdefault(declared, len(pool))
        for declared in right_types:
            pool.setdefault(declared, len(pool))
        types = list(pool)
        table = np.empty((len(types), len(types)), dtype=np.float64)
        for i, left_type in enumerate(types):
            for j, right_type in enumerate(types):
                table[i, j] = self._type_score(left_type, right_type)
        rows = [pool[declared] for declared in left_types]
        cols = [pool[declared] for declared in right_types]
        return table[np.ix_(rows, cols)]
