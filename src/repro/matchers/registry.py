"""Corpus-level unique-name registry for the batch matching engine.

Attribute names repeat heavily across the O(n²) schema pairs of a network,
and every first-line matcher needs the *same* derived views of a name:
its token sequence, the concatenated normal form, the un-expanded normal
form (for prefix/suffix keys) and its q-gram profile.  The seed code
recomputed these per pair per matcher per edge; the registry computes them
exactly once per distinct name and shares them process-wide, which is what
makes the vectorised ``similarity_matrix`` kernels cheap to assemble.

Profiles are derived with the default tokenization pipeline (default
lexicon, abbreviation expansion on/off).  Matchers that fold tokens through
a matcher-specific resource (a thesaurus, fitted IDF weights) keep their own
small per-matcher caches on top of these shared profiles.
"""

from __future__ import annotations

from . import string_metrics, tokenization


class NameProfile:
    """Every derived view of one attribute name, computed once.

    Attributes
    ----------
    name:
        The raw attribute name this profile describes.
    tokens:
        The canonical token sequence (:func:`repro.matchers.tokenization.tokenize`).
    token_set:
        ``tokens`` as a frozenset, for overlap measures.
    norm:
        Concatenated token form (:func:`repro.matchers.tokenization.normalize`).
    norm_plain:
        Concatenated form *without* abbreviation expansion — the
        prefix/suffix key (``normalize(name, expand=False)``).
    """

    __slots__ = ("name", "tokens", "token_set", "norm", "norm_plain", "_qgram_counts")

    def __init__(self, name: str):
        self.name = name
        self.tokens: tuple[str, ...] = tuple(tokenization.tokenize(name))
        self.token_set: frozenset[str] = frozenset(self.tokens)
        self.norm: str = "".join(self.tokens)
        self.norm_plain: str = "".join(tokenization.tokenize(name, expand=False))
        self._qgram_counts: dict[int, dict[str, int]] = {}

    def qgram_counts(self, q: int) -> dict[str, int]:
        """Padded q-gram multiset of the normal form, as gram → count."""
        cached = self._qgram_counts.get(q)
        if cached is None:
            cached = {}
            for gram in string_metrics.qgrams(self.norm, q):
                cached[gram] = cached.get(gram, 0) + 1
            self._qgram_counts[q] = cached
        return cached


def folded_token_set(name, thesaurus, cache: dict) -> frozenset[str]:
    """The (optionally thesaurus-folded) token set of a name, memoised.

    Shared by every matcher that folds tokens through a synonym resource
    (TF-IDF, synonym matcher).  ``cache`` is the *matcher's own* dict — the
    folding depends on its thesaurus, so it cannot live on the shared
    profile — and stays valid for the matcher's lifetime because both the
    tokenizer and the thesaurus are fixed at construction.
    """
    cached = cache.get(name)
    if cached is None:
        tokens = profile(name).tokens
        if thesaurus is not None:
            cached = frozenset(thesaurus.canonical(t) for t in tokens)
        else:
            cached = frozenset(tokens)
        cache[name] = cached
    return cached


_PROFILES: dict[str, NameProfile] = {}


def profile(name: str) -> NameProfile:
    """The (memoised) :class:`NameProfile` of ``name``."""
    cached = _PROFILES.get(name)
    if cached is None:
        cached = _PROFILES[name] = NameProfile(name)
    return cached


def profiles(names) -> list[NameProfile]:
    """Profiles for a sequence of names (memoised per distinct name)."""
    return [profile(name) for name in names]


def clear() -> None:
    """Drop all cached profiles (tests; lexicon experiments)."""
    _PROFILES.clear()
