"""First-line matchers over attribute names.

Each matcher wraps one string metric from
:mod:`repro.matchers.string_metrics`, applied to the normalised name or the
token sequence produced by :mod:`repro.matchers.tokenization`.
"""

from __future__ import annotations

from . import string_metrics, tokenization
from .base import CachedMatcher


class EditDistanceMatcher(CachedMatcher):
    """Normalised Levenshtein similarity over normalised names."""

    name = "edit-distance"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.levenshtein_similarity(
            tokenization.normalize(left_name), tokenization.normalize(right_name)
        )


class JaroWinklerMatcher(CachedMatcher):
    """Jaro-Winkler over normalised names; favours shared prefixes."""

    name = "jaro-winkler"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.jaro_winkler_similarity(
            tokenization.normalize(left_name), tokenization.normalize(right_name)
        )


class TokenMatcher(CachedMatcher):
    """Jaccard overlap of the expanded token sets."""

    name = "token-jaccard"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.jaccard_similarity(
            tokenization.tokenize(left_name), tokenization.tokenize(right_name)
        )


class MongeElkanMatcher(CachedMatcher):
    """Monge-Elkan over tokens with a Jaro-Winkler inner metric.

    Robust to token reordering and partial abbreviation, the classic hybrid
    measure used by matcher toolkits.
    """

    name = "monge-elkan"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.monge_elkan_similarity(
            tokenization.tokenize(left_name), tokenization.tokenize(right_name)
        )


class NGramMatcher(CachedMatcher):
    """Dice coefficient of padded character trigrams."""

    name = "ngram"

    def __init__(self, q: int = 3):
        super().__init__()
        self.q = q

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.qgram_similarity(
            tokenization.normalize(left_name),
            tokenization.normalize(right_name),
            q=self.q,
        )


class SubstringMatcher(CachedMatcher):
    """Longest-common-substring similarity over normalised names."""

    name = "substring"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.lcs_similarity(
            tokenization.normalize(left_name), tokenization.normalize(right_name)
        )


class PrefixSuffixMatcher(CachedMatcher):
    """Maximum of common-prefix and common-suffix ratios.

    Catches truncation-style naming (``description`` vs ``desc``) and
    suffix-style naming (``orderDate`` vs ``shipDate`` score low here, while
    ``billingDate`` vs ``date`` score high).
    """

    name = "prefix-suffix"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        normalized_left = tokenization.normalize(left_name, expand=False)
        normalized_right = tokenization.normalize(right_name, expand=False)
        return max(
            string_metrics.prefix_similarity(normalized_left, normalized_right),
            string_metrics.suffix_similarity(normalized_left, normalized_right),
        )
