"""First-line matchers over attribute names.

Each matcher wraps one string metric from
:mod:`repro.matchers.string_metrics`, applied to the normalised name or the
token sequence produced by :mod:`repro.matchers.tokenization`.  Derived name
views (token sequences, normal forms, q-gram profiles) come from the shared
unique-name registry (:mod:`repro.matchers.registry`), so they are computed
once per distinct name regardless of how many pairs or edges reuse it.

All matchers here implement both the scalar reference path
(``_name_similarity``) and a vectorised block kernel
(``_name_similarity_matrix``); property tests pin each matrix kernel to
its scalar counterpart at 1e-9.
"""

from __future__ import annotations

import numpy as np

from . import registry, string_metrics
from .base import CachedMatcher


class EditDistanceMatcher(CachedMatcher):
    """Normalised Levenshtein similarity over normalised names."""

    name = "edit-distance"

    def __init__(self) -> None:
        super().__init__()
        # Norm-pair similarity cache shared across edges/calls: distinct
        # names collapse to far fewer distinct normal-form pairs.
        self._pair_cache: string_metrics.PairCache = {}

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.levenshtein_similarity(
            registry.profile(left_name).norm, registry.profile(right_name).norm
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        return string_metrics.levenshtein_similarity_matrix(
            [registry.profile(name).norm for name in left_names],
            [registry.profile(name).norm for name in right_names],
            cache=self._pair_cache,
        )


class JaroWinklerMatcher(CachedMatcher):
    """Jaro-Winkler over normalised names; favours shared prefixes."""

    name = "jaro-winkler"

    def __init__(self) -> None:
        super().__init__()
        self._pair_cache: string_metrics.PairCache = {}

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.jaro_winkler_similarity(
            registry.profile(left_name).norm, registry.profile(right_name).norm
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        return string_metrics.jaro_winkler_similarity_matrix(
            [registry.profile(name).norm for name in left_names],
            [registry.profile(name).norm for name in right_names],
            cache=self._pair_cache,
        )


class TokenMatcher(CachedMatcher):
    """Jaccard overlap of the expanded token sets."""

    name = "token-jaccard"

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.jaccard_similarity(
            registry.profile(left_name).tokens, registry.profile(right_name).tokens
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        return string_metrics.jaccard_matrix(
            [registry.profile(name).token_set for name in left_names],
            [registry.profile(name).token_set for name in right_names],
        )


class MongeElkanMatcher(CachedMatcher):
    """Monge-Elkan over tokens with a Jaro-Winkler inner metric.

    Robust to token reordering and partial abbreviation, the classic hybrid
    measure used by matcher toolkits.  The batch kernel evaluates the inner
    metric once per unique token pair and gathers the best-match means from
    that token-pair matrix.
    """

    name = "monge-elkan"

    def __init__(self) -> None:
        super().__init__()
        # Token-pair inner-metric cache: the token vocabulary is tiny and
        # stable across edges, so later blocks reuse almost every value.
        self._inner_cache: string_metrics.PairCache = {}

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.monge_elkan_similarity(
            registry.profile(left_name).tokens, registry.profile(right_name).tokens
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        return string_metrics.monge_elkan_matrix(
            [registry.profile(name).tokens for name in left_names],
            [registry.profile(name).tokens for name in right_names],
            inner_cache=self._inner_cache,
        )


class NGramMatcher(CachedMatcher):
    """Dice coefficient of padded character trigrams."""

    name = "ngram"

    def __init__(self, q: int = 3):
        super().__init__()
        self.q = q

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.qgram_similarity(
            registry.profile(left_name).norm,
            registry.profile(right_name).norm,
            q=self.q,
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        return string_metrics.dice_multiset_matrix(
            [registry.profile(name).qgram_counts(self.q) for name in left_names],
            [registry.profile(name).qgram_counts(self.q) for name in right_names],
        )


class SubstringMatcher(CachedMatcher):
    """Longest-common-substring similarity over normalised names."""

    name = "substring"

    def __init__(self) -> None:
        super().__init__()
        self._pair_cache: string_metrics.PairCache = {}

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        return string_metrics.lcs_similarity(
            registry.profile(left_name).norm, registry.profile(right_name).norm
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        return string_metrics.lcs_similarity_matrix(
            [registry.profile(name).norm for name in left_names],
            [registry.profile(name).norm for name in right_names],
            cache=self._pair_cache,
        )


class PrefixSuffixMatcher(CachedMatcher):
    """Maximum of common-prefix and common-suffix ratios.

    Catches truncation-style naming (``description`` vs ``desc``) and
    suffix-style naming (``orderDate`` vs ``shipDate`` score low here, while
    ``billingDate`` vs ``date`` score high).
    """

    name = "prefix-suffix"

    def __init__(self) -> None:
        super().__init__()
        self._prefix_cache: string_metrics.PairCache = {}
        self._suffix_cache: string_metrics.PairCache = {}

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        normalized_left = registry.profile(left_name).norm_plain
        normalized_right = registry.profile(right_name).norm_plain
        return max(
            string_metrics.prefix_similarity(normalized_left, normalized_right),
            string_metrics.suffix_similarity(normalized_left, normalized_right),
        )

    def _name_similarity_matrix(self, left_names, right_names) -> np.ndarray:
        left_keys = [registry.profile(name).norm_plain for name in left_names]
        right_keys = [registry.profile(name).norm_plain for name in right_names]
        prefix = string_metrics.prefix_similarity_matrix(
            left_keys, right_keys, cache=self._prefix_cache
        )
        suffix = string_metrics.prefix_similarity_matrix(
            [key[::-1] for key in left_keys],
            [key[::-1] for key in right_keys],
            cache=self._suffix_cache,
        )
        return np.maximum(prefix, suffix)
