"""Second-line matching: ensemble aggregation and candidate selection.

COMA++ and AMC — the tools the paper feeds its networks from — are both
*ensembles*: they run several first-line matchers, aggregate the similarity
matrices, and then select attribute pairs from the combined matrix.  This
module provides those two stages: :class:`EnsembleMatcher` with pluggable
aggregation, and a family of selectors (threshold, top-k per attribute,
max-delta, stable marriage).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

from ..core.correspondence import Correspondence, correspondence
from ..core.schema import Attribute, Schema
from .base import Matcher, SimilarityMatrix

Aggregation = Callable[[Sequence[float], Sequence[float]], float]


def weighted_average(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Σ wᵢsᵢ / Σ wᵢ — COMA's default aggregation."""
    total_weight = sum(weights)
    if total_weight == 0.0:
        return 0.0
    return sum(s * w for s, w in zip(scores, weights)) / total_weight


def maximum(scores: Sequence[float], weights: Sequence[float]) -> float:
    """max sᵢ — optimistic aggregation."""
    return max(scores) if scores else 0.0


def harmonic_mean(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Harmonic mean; punishes disagreement between matchers."""
    if not scores or any(s == 0.0 for s in scores):
        return 0.0
    return len(scores) / sum(1.0 / s for s in scores)


class EnsembleMatcher(Matcher):
    """Combine several first-line matchers into one similarity score.

    Results are cached by attribute name and declared type: attribute names
    repeat heavily across the O(n²) schema pairs of a network, so the cache
    collapses most of the repeated metric work.
    """

    name = "ensemble"

    def __init__(
        self,
        matchers: Sequence[Matcher],
        weights: Optional[Sequence[float]] = None,
        aggregation: Aggregation = weighted_average,
    ):
        if not matchers:
            raise ValueError("an ensemble needs at least one matcher")
        self.matchers = tuple(matchers)
        if weights is None:
            weights = [1.0] * len(self.matchers)
        if len(weights) != len(self.matchers):
            raise ValueError("one weight per matcher required")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self.weights = tuple(weights)
        self.aggregation = aggregation
        self._cache: dict[tuple, float] = {}

    def similarity(self, left: Attribute, right: Attribute) -> float:
        left_key = (left.name, left.data_type)
        right_key = (right.name, right.data_type)
        key = (left_key, right_key) if left_key <= right_key else (right_key, left_key)
        cached = self._cache.get(key)
        if cached is None:
            scores = [m.similarity(left, right) for m in self.matchers]
            cached = min(1.0, max(0.0, self.aggregation(scores, self.weights)))
            self._cache[key] = cached
        return cached

    def fit(self, schemas: Sequence["Schema"]) -> "EnsembleMatcher":
        """Fit every corpus-dependent member matcher (e.g. TF-IDF)."""
        for member in self.matchers:
            fit = getattr(member, "fit", None)
            if callable(fit):
                fit(schemas)
        self._cache.clear()
        return self


class Selector(abc.ABC):
    """Extracts candidate correspondences from a similarity matrix."""

    name: str = "selector"

    @abc.abstractmethod
    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        """Chosen correspondences with their confidence values."""


class ThresholdSelector(Selector):
    """Every pair at or above a fixed similarity threshold."""

    name = "threshold"

    def __init__(self, threshold: float = 0.5):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        return matrix.to_correspondences(self.threshold)


class TopKSelector(Selector):
    """The k best partners per attribute (both directions), above a floor.

    Deliberately produces one-to-one violations when k > 1 — exactly the
    noisy output reconciliation has to clean up.
    """

    name = "top-k"

    def __init__(self, k: int = 2, threshold: float = 0.3):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        per_left: dict[Attribute, list[tuple[float, Attribute]]] = {}
        per_right: dict[Attribute, list[tuple[float, Attribute]]] = {}
        for (left_attr, right_attr), score in matrix.items():
            if score < self.threshold:
                continue
            per_left.setdefault(left_attr, []).append((score, right_attr))
            per_right.setdefault(right_attr, []).append((score, left_attr))

        chosen: dict[Correspondence, float] = {}
        for left_attr, partners in per_left.items():
            partners.sort(key=lambda pair: (-pair[0], pair[1]))
            for score, right_attr in partners[: self.k]:
                chosen[correspondence(left_attr, right_attr)] = score
        for right_attr, partners in per_right.items():
            partners.sort(key=lambda pair: (-pair[0], pair[1]))
            for score, left_attr in partners[: self.k]:
                chosen[correspondence(left_attr, right_attr)] = score
        return chosen


class MaxDeltaSelector(Selector):
    """Pairs within ``delta`` of each attribute's best score (COMA-style)."""

    name = "max-delta"

    def __init__(self, delta: float = 0.1, threshold: float = 0.3):
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        self.delta = delta
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        best_left: dict[Attribute, float] = {}
        best_right: dict[Attribute, float] = {}
        for (left_attr, right_attr), score in matrix.items():
            best_left[left_attr] = max(best_left.get(left_attr, 0.0), score)
            best_right[right_attr] = max(best_right.get(right_attr, 0.0), score)
        chosen: dict[Correspondence, float] = {}
        for (left_attr, right_attr), score in matrix.items():
            if score < self.threshold:
                continue
            if (
                score >= best_left[left_attr] - self.delta
                or score >= best_right[right_attr] - self.delta
            ):
                chosen[correspondence(left_attr, right_attr)] = score
        return chosen


class StableMarriageSelector(Selector):
    """A greedy one-to-one extraction (highest scores first).

    Produces a violation-free (w.r.t. one-to-one) matching per schema pair;
    useful as the "clean" extreme when studying how much network constraints
    matter.
    """

    name = "stable-marriage"

    def __init__(self, threshold: float = 0.3):
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        scored = sorted(
            (
                (score, left_attr, right_attr)
                for (left_attr, right_attr), score in matrix.items()
                if score >= self.threshold
            ),
            key=lambda triple: (-triple[0], triple[1], triple[2]),
        )
        used_left: set[Attribute] = set()
        used_right: set[Attribute] = set()
        chosen: dict[Correspondence, float] = {}
        for score, left_attr, right_attr in scored:
            if left_attr in used_left or right_attr in used_right:
                continue
            used_left.add(left_attr)
            used_right.add(right_attr)
            chosen[correspondence(left_attr, right_attr)] = score
        return chosen


def match_pair(
    left: Schema,
    right: Schema,
    matcher: Matcher,
    selector: Selector,
) -> dict[Correspondence, float]:
    """Run one matcher+selector over a schema pair."""
    return selector.select(matcher.match(left, right))
