"""Second-line matching: ensemble aggregation and candidate selection.

COMA++ and AMC — the tools the paper feeds its networks from — are both
*ensembles*: they run several first-line matchers, aggregate the similarity
matrices, and then select attribute pairs from the combined matrix.  This
module provides those two stages: :class:`EnsembleMatcher` with pluggable
aggregation, and a family of selectors (threshold, top-k per attribute,
max-delta, stable marriage).

Both stages are batch-first.  :meth:`EnsembleMatcher.similarity_matrix`
stacks the members' score blocks and aggregates them with numpy (the three
built-in aggregations ship closed-form array kernels; custom callables can
supply one through :func:`register_aggregator`, and unregistered ones fall
back to per-cell application with a one-time warning), and every selector
reduces the matrix's score array directly — ``argpartition``-style row
sorts and row/column max reductions instead of per-pair Python
dictionaries.  The scalar paths are kept as the reference semantics the
array paths are pinned against.
"""

from __future__ import annotations

import abc
import warnings
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.correspondence import Correspondence, correspondence
from ..core.schema import Attribute, Schema
from .base import Matcher, SimilarityMatrix

Aggregation = Callable[[Sequence[float], Sequence[float]], float]


def weighted_average(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Σ wᵢsᵢ / Σ wᵢ — COMA's default aggregation."""
    total_weight = sum(weights)
    if total_weight == 0.0:
        return 0.0
    return sum(s * w for s, w in zip(scores, weights)) / total_weight


def maximum(scores: Sequence[float], weights: Sequence[float]) -> float:
    """max sᵢ — optimistic aggregation."""
    return max(scores) if scores else 0.0


def harmonic_mean(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Harmonic mean; punishes disagreement between matchers."""
    if not scores or any(s == 0.0 for s in scores):
        return 0.0
    return len(scores) / sum(1.0 / s for s in scores)


def _weighted_average_blocks(blocks: np.ndarray, weights: np.ndarray) -> np.ndarray:
    total_weight = weights.sum()
    if total_weight == 0.0:
        return np.zeros(blocks.shape[1:], dtype=np.float64)
    return np.tensordot(weights, blocks, axes=1) / total_weight


def _maximum_blocks(blocks: np.ndarray, weights: np.ndarray) -> np.ndarray:
    return blocks.max(axis=0)


def _harmonic_mean_blocks(blocks: np.ndarray, weights: np.ndarray) -> np.ndarray:
    any_zero = (blocks == 0.0).any(axis=0)
    with np.errstate(divide="ignore"):
        combined = len(blocks) / np.where(
            any_zero, np.inf, (1.0 / np.where(blocks == 0.0, 1.0, blocks)).sum(axis=0)
        )
    return np.where(any_zero, 0.0, combined)


#: The array-kernel signature: (stacked member blocks of shape
#: ``(members, rows, cols)``, weights of shape ``(members,)``) → combined
#: ``(rows, cols)`` block.
BlockAggregation = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Array kernels for the registered aggregations, keyed by the scalar
#: function object; unregistered (custom) aggregations fall back to
#: per-cell application of the scalar callable (and warn once).
_BLOCK_AGGREGATIONS: dict[Aggregation, BlockAggregation] = {
    weighted_average: _weighted_average_blocks,
    maximum: _maximum_blocks,
    harmonic_mean: _harmonic_mean_blocks,
}

#: Custom aggregations already warned about, so the per-cell fallback nags
#: exactly once per callable, not once per schema pair.
_FALLBACK_WARNED: set[Aggregation] = set()


def register_aggregator(
    aggregation: Aggregation, block_kernel: BlockAggregation
) -> BlockAggregation:
    """Register an array kernel for a custom aggregation callable.

    ``EnsembleMatcher.similarity_matrix`` aggregates the members' stacked
    score blocks with the kernel registered for its ``aggregation``; a
    callable without one falls back to applying the scalar aggregation per
    cell — O(rows × cols) Python calls per schema pair, easily the slowest
    part of a network match — and warns once.  ``block_kernel`` receives the
    ``(members, rows, cols)`` score stack plus the weight vector and must
    return the combined ``(rows, cols)`` block; results are clipped to
    [0, 1] by the caller, mirroring the scalar path.  The registration is
    process-wide and keyed on the callable object itself.  Returns
    ``block_kernel`` so it can double as a decorator.
    """
    if not callable(aggregation) or not callable(block_kernel):
        raise TypeError("register_aggregator takes two callables")
    _BLOCK_AGGREGATIONS[aggregation] = block_kernel
    _FALLBACK_WARNED.discard(aggregation)
    return block_kernel


def _warn_slow_aggregation(aggregation: Aggregation) -> None:
    if aggregation in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(aggregation)
    name = getattr(aggregation, "__name__", repr(aggregation))
    warnings.warn(
        f"ensemble aggregation {name!r} has no registered array kernel; "
        "falling back to per-cell Python aggregation (register one with "
        "repro.matchers.ensemble.register_aggregator)",
        RuntimeWarning,
        stacklevel=3,
    )


class EnsembleMatcher(Matcher):
    """Combine several first-line matchers into one similarity score.

    Scalar results are cached by attribute name and declared type: attribute
    names repeat heavily across the O(n²) schema pairs of a network, so the
    cache collapses most of the repeated metric work.  The batch path needs
    no cache — it stacks the members' vectorised blocks and aggregates them
    as one array operation.
    """

    name = "ensemble"

    def __init__(
        self,
        matchers: Sequence[Matcher],
        weights: Optional[Sequence[float]] = None,
        aggregation: Aggregation = weighted_average,
    ):
        if not matchers:
            raise ValueError("an ensemble needs at least one matcher")
        self.matchers = tuple(matchers)
        if weights is None:
            weights = [1.0] * len(self.matchers)
        if len(weights) != len(self.matchers):
            raise ValueError("one weight per matcher required")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self.weights = tuple(weights)
        self.aggregation = aggregation
        self._cache: dict[tuple, float] = {}
        member_fields = [m.depends_on for m in self.matchers]
        if any(fields is None for fields in member_fields):
            self.depends_on = None
        else:
            self.depends_on = tuple(
                sorted({field for fields in member_fields for field in fields})
            )

    def similarity(self, left: Attribute, right: Attribute) -> float:
        left_key = (left.name, left.data_type)
        right_key = (right.name, right.data_type)
        # Canonicalise the unordered pair; None types sort as "" (members
        # are symmetric, so either orientation yields the same score).
        if (left_key[0], left_key[1] or "") <= (right_key[0], right_key[1] or ""):
            key = (left_key, right_key)
        else:
            key = (right_key, left_key)
        cached = self._cache.get(key)
        if cached is None:
            scores = [m.similarity(left, right) for m in self.matchers]
            cached = min(1.0, max(0.0, self.aggregation(scores, self.weights)))
            self._cache[key] = cached
        return cached

    def similarity_matrix(
        self,
        left_attrs: Sequence[Attribute],
        right_attrs: Sequence[Attribute],
    ) -> np.ndarray:
        """Aggregate the members' stacked score blocks as array ops."""
        blocks = np.stack(
            [m.similarity_matrix(left_attrs, right_attrs) for m in self.matchers]
        )
        weights = np.asarray(self.weights, dtype=np.float64)
        kernel = _BLOCK_AGGREGATIONS.get(self.aggregation)
        if kernel is not None:
            combined = kernel(blocks, weights)
        else:
            _warn_slow_aggregation(self.aggregation)
            combined = np.empty(blocks.shape[1:], dtype=np.float64)
            for i in range(combined.shape[0]):
                for j in range(combined.shape[1]):
                    combined[i, j] = self.aggregation(
                        blocks[:, i, j].tolist(), self.weights
                    )
        return np.clip(combined, 0.0, 1.0)

    def fit(self, schemas: Sequence["Schema"]) -> "EnsembleMatcher":
        """Fit every corpus-dependent member matcher (e.g. TF-IDF)."""
        for member in self.matchers:
            fit = getattr(member, "fit", None)
            if callable(fit):
                fit(schemas)
        self._cache.clear()
        return self


def _attribute_ranks(attrs: Sequence[Attribute]) -> np.ndarray:
    """Rank of each attribute under the ``(schema, name)`` sort order.

    The scalar selectors break score ties by comparing :class:`Attribute`
    objects; the array selectors reproduce that exactly by sorting on these
    precomputed ranks.
    """
    order = sorted(range(len(attrs)), key=lambda i: attrs[i])
    ranks = np.empty(len(attrs), dtype=np.int64)
    for rank, index in enumerate(order):
        ranks[index] = rank
    return ranks


class Selector(abc.ABC):
    """Extracts candidate correspondences from a similarity matrix."""

    name: str = "selector"

    @abc.abstractmethod
    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        """Chosen correspondences with their confidence values."""


class ThresholdSelector(Selector):
    """Every pair at or above a fixed similarity threshold."""

    name = "threshold"

    def __init__(self, threshold: float = 0.5):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        return matrix.to_correspondences(self.threshold)


class TopKSelector(Selector):
    """The k best partners per attribute (both directions), above a floor.

    Deliberately produces one-to-one violations when k > 1 — exactly the
    noisy output reconciliation has to clean up.  Ties are broken by
    attribute order, matching the scalar reference: partners are ranked by
    ``(-score, partner)``.
    """

    name = "top-k"

    def __init__(self, k: int = 2, threshold: float = 0.3):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.threshold = threshold

    def _directed(
        self,
        chosen: dict[Correspondence, float],
        scores: np.ndarray,
        eligible: np.ndarray,
        row_attrs: Sequence[Attribute],
        col_attrs: Sequence[Attribute],
    ) -> None:
        """Add each row's top-k eligible partners to ``chosen``."""
        if scores.size == 0:
            return
        col_ranks = _attribute_ranks(col_attrs)
        # Primary key: score descending (ineligible cells sink to the end);
        # secondary key: partner attribute order — np.lexsort's last key is
        # the primary one, and each row is sorted independently.
        sort_scores = np.where(eligible, scores, -np.inf)
        order = np.lexsort(
            (np.broadcast_to(col_ranks, scores.shape), -sort_scores), axis=1
        )
        counts = np.minimum(eligible.sum(axis=1), self.k)
        for i, row_attr in enumerate(row_attrs):
            for j in order[i, : counts[i]].tolist():
                chosen[correspondence(row_attr, col_attrs[j])] = float(
                    scores[i, j]
                )

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        scores = matrix.scores
        eligible = matrix.set_mask & (scores >= self.threshold)
        chosen: dict[Correspondence, float] = {}
        self._directed(
            chosen, scores, eligible, matrix.left_attrs, matrix.right_attrs
        )
        self._directed(
            chosen, scores.T, eligible.T, matrix.right_attrs, matrix.left_attrs
        )
        return chosen


class MaxDeltaSelector(Selector):
    """Pairs within ``delta`` of each attribute's best score (COMA-style)."""

    name = "max-delta"

    def __init__(self, delta: float = 0.1, threshold: float = 0.3):
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        self.delta = delta
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        scores = matrix.scores
        mask = matrix.set_mask
        if not mask.any():
            return {}
        masked = np.where(mask, scores, -np.inf)
        best_left = masked.max(axis=1)
        best_right = masked.max(axis=0)
        keep = (
            mask
            & (scores >= self.threshold)
            & (
                (scores >= best_left[:, None] - self.delta)
                | (scores >= best_right[None, :] - self.delta)
            )
        )
        rows, cols = np.nonzero(keep)
        left_attrs, right_attrs = matrix.left_attrs, matrix.right_attrs
        return {
            correspondence(left_attrs[i], right_attrs[j]): float(scores[i, j])
            for i, j in zip(rows.tolist(), cols.tolist())
        }


class StableMarriageSelector(Selector):
    """A greedy one-to-one extraction (highest scores first).

    Produces a violation-free (w.r.t. one-to-one) matching per schema pair;
    useful as the "clean" extreme when studying how much network constraints
    matter.  Candidates are ranked by ``(-score, left, right)`` — the array
    path extracts and sorts them with one ``lexsort``; only the (short)
    greedy pass remains sequential.
    """

    name = "stable-marriage"

    def __init__(self, threshold: float = 0.3):
        self.threshold = threshold

    def select(self, matrix: SimilarityMatrix) -> dict[Correspondence, float]:
        scores = matrix.scores
        eligible = matrix.set_mask & (scores >= self.threshold)
        rows, cols = np.nonzero(eligible)
        if rows.size == 0:
            return {}
        left_ranks = _attribute_ranks(matrix.left_attrs)
        right_ranks = _attribute_ranks(matrix.right_attrs)
        values = scores[rows, cols]
        order = np.lexsort((right_ranks[cols], left_ranks[rows], -values))
        used_left: set[int] = set()
        used_right: set[int] = set()
        chosen: dict[Correspondence, float] = {}
        left_attrs, right_attrs = matrix.left_attrs, matrix.right_attrs
        for index in order.tolist():
            i, j = int(rows[index]), int(cols[index])
            if i in used_left or j in used_right:
                continue
            used_left.add(i)
            used_right.add(j)
            chosen[correspondence(left_attrs[i], right_attrs[j])] = float(
                values[index]
            )
        return chosen


def match_pair(
    left: Schema,
    right: Schema,
    matcher: Matcher,
    selector: Selector,
) -> dict[Correspondence, float]:
    """Run one matcher+selector over a schema pair."""
    return selector.select(matcher.match(left, right))
