"""End-to-end matching pipelines and the COMA++/AMC stand-in configurations.

A :class:`MatcherPipeline` bundles an ensemble matcher with a selector and
can match a whole network: every edge of the interaction graph yields the
candidate correspondences for that schema pair, merged into one
:class:`~repro.core.correspondence.CandidateSet` — exactly the input the
paper's probabilistic matching network is built from.  Matching is batch
end-to-end: each edge is scored as one
:meth:`~repro.matchers.base.Matcher.similarity_matrix` block, and blocks
are computed only once per distinct attribute profile — edges whose schema
pair projects to identical ``(name, data_type)`` tuples (scaled synthetic
corpora replicate schemas heavily) share the same score array.

Fitting is explicit: call :meth:`MatcherPipeline.fit` with the corpus the
corpus-dependent matchers (TF-IDF) should learn from.  ``match_pair`` and
``match_network`` fit lazily on their own input *only when the pipeline has
never been fitted* and reuse the fitted state afterwards — repeated pair
matching no longer silently re-learns statistics from two-schema corpora
nor discards the ensemble's score cache on every call.

``coma_like()`` and ``amc_like()`` are the two configurations standing in
for the closed-source tools of the paper's evaluation (Section VI-A).  They
differ in first-line composition, aggregation, and selection policy, and are
tuned to produce realistically noisy output (near the paper's reported ~0.67
candidate precision on the BP dataset) including plenty of one-to-one and
cycle violations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.correspondence import CandidateSet
from ..core.graphs import InteractionGraph, complete_graph
from ..core.schema import Schema
from .base import Matcher, SimilarityMatrix
from .ensemble import (
    EnsembleMatcher,
    MaxDeltaSelector,
    Selector,
    ThresholdSelector,
    TopKSelector,
    weighted_average,
)
from .name_matchers import (
    EditDistanceMatcher,
    JaroWinklerMatcher,
    MongeElkanMatcher,
    NGramMatcher,
    PrefixSuffixMatcher,
    TokenMatcher,
)
from .semantic import DataTypeMatcher, SynonymMatcher, Thesaurus
from .tfidf import TfIdfTokenMatcher


class MatcherPipeline:
    """A named matcher+selector combination usable on pairs or networks.

    Corpus-dependent matchers are fitted at most once: :meth:`fit` fixes the
    corpus explicitly, and the ``match_*`` entry points fall back to fitting
    on their own input only while the pipeline is still unfitted.
    """

    def __init__(self, name: str, matcher: Matcher, selector: Selector):
        self.name = name
        self.matcher = matcher
        self.selector = selector
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether corpus statistics have been learned (by :meth:`fit`)."""
        return self._fitted

    def fit(self, schemas: Sequence[Schema]) -> "MatcherPipeline":
        """Fit corpus-dependent matchers (TF-IDF and friends) on ``schemas``.

        Refitting re-learns the corpus statistics and invalidates the
        matcher's score caches; call it only when the corpus changes.
        """
        fit = getattr(self.matcher, "fit", None)
        if callable(fit):
            fit(schemas)
        self._fitted = True
        return self

    def _match_pair_fitted(self, left: Schema, right: Schema) -> CandidateSet:
        return self._select(self.matcher.match(left, right))

    def _select(self, matrix: SimilarityMatrix) -> CandidateSet:
        chosen = self.selector.select(matrix)
        candidates = CandidateSet()
        for corr, confidence in chosen.items():
            candidates.add(corr, confidence)
        return candidates

    def match_pair(self, left: Schema, right: Schema) -> CandidateSet:
        """Candidate correspondences for one schema pair.

        Uses the fitted corpus statistics when :meth:`fit` has been called;
        otherwise fits on just these two schemas (once — repeated calls
        reuse that state instead of re-learning it per call).
        """
        if not self._fitted:
            self.fit([left, right])
        return self._match_pair_fitted(left, right)

    def match_network(
        self,
        schemas: Sequence[Schema],
        graph: Optional[InteractionGraph] = None,
    ) -> CandidateSet:
        """Candidate correspondences for every edge of the interaction graph.

        Fits on the whole corpus unless already fitted.  When the matcher
        declares :attr:`~repro.matchers.base.Matcher.depends_on` — every
        built-in matcher and the stock pipelines do — the matcher work is
        deduplicated across edges: one block is computed over the
        *universe* of distinct attribute profiles and every edge gathers
        its submatrix from it, so attribute profiles repeated across the
        O(n²) schema pairs are scored exactly once.  (When the universe
        square would dwarf the edges actually requested — sparse graphs
        over near-disjoint schemas — it falls back to per-edge blocks,
        still shared between profile-identical edges.)  Third-party
        matchers that leave ``depends_on`` at its ``None`` default take the
        plain per-edge path; declaring the attribute fields the score reads
        is all it takes to opt in.
        """
        graph = graph or complete_graph([s.name for s in schemas])
        by_name = {schema.name: schema for schema in schemas}
        if not self._fitted:
            self.fit(list(schemas))
        edges = list(graph.edges)
        candidates = CandidateSet()

        def select_into(matrix: SimilarityMatrix) -> None:
            for corr, confidence in self.selector.select(matrix).items():
                candidates.add(corr, confidence)

        depends_on = self.matcher.depends_on
        if depends_on is None:
            for left_name, right_name in edges:
                select_into(self.matcher.match(by_name[left_name], by_name[right_name]))
            return candidates

        def profile(attr) -> tuple:
            return tuple(getattr(attr, field) for field in depends_on)

        universe: dict[tuple, object] = {}
        for schema in schemas:
            for attr in schema:
                universe.setdefault(profile(attr), attr)
        index = {key: i for i, key in enumerate(universe)}
        rows = {
            schema.name: np.fromiter(
                (index[profile(attr)] for attr in schema),
                dtype=np.intp,
                count=len(schema),
            )
            for schema in schemas
        }
        edge_cells = sum(
            len(by_name[left]) * len(by_name[right]) for left, right in edges
        )
        if len(universe) ** 2 <= max(4 * edge_cells, 4096):
            representatives = list(universe.values())
            block = self.matcher.similarity_matrix(representatives, representatives)
            for left_name, right_name in edges:
                select_into(
                    SimilarityMatrix.from_array(
                        by_name[left_name],
                        by_name[right_name],
                        block[np.ix_(rows[left_name], rows[right_name])],
                    )
                )
            return candidates

        blocks: dict[tuple[tuple, tuple], np.ndarray] = {}
        schema_profiles = {
            schema.name: tuple(profile(attr) for attr in schema)
            for schema in schemas
        }
        for left_name, right_name in edges:
            left, right = by_name[left_name], by_name[right_name]
            key = (schema_profiles[left_name], schema_profiles[right_name])
            block = blocks.get(key)
            if block is None:
                block = self.matcher.similarity_matrix(
                    left.attributes, right.attributes
                )
                blocks[key] = block
            select_into(SimilarityMatrix.from_array(left, right, block))
        return candidates


def coma_like(
    threshold: float = 0.60, max_delta: float = 0.08
) -> MatcherPipeline:
    """A COMA++-style pipeline.

    COMA++ composes many string-level matchers (including corpus-weighted
    and dictionary-based ones) with a weighted-average aggregation and
    selects pairs whose score is within a delta of each attribute's best
    score.  Tuned to ≈0.67 candidate precision on the BP corpus, matching
    the figure the paper reports for COMA++ on its BP dataset.
    """
    matcher = EnsembleMatcher(
        matchers=[
            EditDistanceMatcher(),
            JaroWinklerMatcher(),
            TfIdfTokenMatcher(Thesaurus()),
            TokenMatcher(),
            NGramMatcher(),
        ],
        weights=[1.0, 0.5, 2.5, 1.0, 1.0],
        aggregation=weighted_average,
    )
    selector = MaxDeltaSelector(delta=max_delta, threshold=threshold)
    return MatcherPipeline("coma_like", matcher, selector)


def amc_like(threshold: float = 0.65, top_k: int = 2) -> MatcherPipeline:
    """An AMC-style pipeline.

    AMC models matching as a process combining heterogeneous components; we
    mirror that with a weighted combination over hybrid and semantic
    matchers, plus a top-k selection per attribute that deliberately
    over-generates candidates (and hence one-to-one violations).
    """
    matcher = EnsembleMatcher(
        matchers=[
            MongeElkanMatcher(),
            TfIdfTokenMatcher(Thesaurus()),
            PrefixSuffixMatcher(),
            SynonymMatcher(),
            DataTypeMatcher(),
        ],
        weights=[1.0, 2.0, 0.5, 1.0, 0.5],
        aggregation=weighted_average,
    )
    selector = TopKSelector(k=top_k, threshold=threshold)
    return MatcherPipeline("amc_like", matcher, selector)


def simple_threshold(
    threshold: float = 0.6,
) -> MatcherPipeline:
    """A single-metric baseline pipeline (edit distance + threshold)."""
    return MatcherPipeline(
        "simple_threshold",
        EditDistanceMatcher(),
        ThresholdSelector(threshold=threshold),
    )


#: Registry of the matcher pipelines used throughout the experiments.
PIPELINES = {
    "coma_like": coma_like,
    "amc_like": amc_like,
    "simple_threshold": simple_threshold,
}
