"""End-to-end matching pipelines and the COMA++/AMC stand-in configurations.

A :class:`MatcherPipeline` bundles an ensemble matcher with a selector and
can match a whole network: every edge of the interaction graph yields the
candidate correspondences for that schema pair, merged into one
:class:`~repro.core.correspondence.CandidateSet` — exactly the input the
paper's probabilistic matching network is built from.

``coma_like()`` and ``amc_like()`` are the two configurations standing in
for the closed-source tools of the paper's evaluation (Section VI-A).  They
differ in first-line composition, aggregation, and selection policy, and are
tuned to produce realistically noisy output (near the paper's reported ~0.67
candidate precision on the BP dataset) including plenty of one-to-one and
cycle violations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.correspondence import CandidateSet
from ..core.graphs import InteractionGraph, complete_graph
from ..core.schema import Schema
from .base import Matcher
from .ensemble import (
    EnsembleMatcher,
    MaxDeltaSelector,
    Selector,
    ThresholdSelector,
    TopKSelector,
    harmonic_mean,
    weighted_average,
)
from .name_matchers import (
    EditDistanceMatcher,
    JaroWinklerMatcher,
    MongeElkanMatcher,
    NGramMatcher,
    PrefixSuffixMatcher,
    SubstringMatcher,
    TokenMatcher,
)
from .semantic import DataTypeMatcher, SynonymMatcher, Thesaurus
from .tfidf import TfIdfTokenMatcher


class MatcherPipeline:
    """A named matcher+selector combination usable on pairs or networks."""

    def __init__(self, name: str, matcher: Matcher, selector: Selector):
        self.name = name
        self.matcher = matcher
        self.selector = selector

    def _fit(self, schemas: Sequence[Schema]) -> None:
        """Fit corpus-dependent matchers (TF-IDF and friends) if supported."""
        fit = getattr(self.matcher, "fit", None)
        if callable(fit):
            fit(schemas)

    def _match_pair_fitted(self, left: Schema, right: Schema) -> CandidateSet:
        chosen = self.selector.select(self.matcher.match(left, right))
        candidates = CandidateSet()
        for corr, confidence in chosen.items():
            candidates.add(corr, confidence)
        return candidates

    def match_pair(self, left: Schema, right: Schema) -> CandidateSet:
        """Candidate correspondences for one schema pair."""
        self._fit([left, right])
        return self._match_pair_fitted(left, right)

    def match_network(
        self,
        schemas: Sequence[Schema],
        graph: Optional[InteractionGraph] = None,
    ) -> CandidateSet:
        """Candidate correspondences for every edge of the interaction graph."""
        graph = graph or complete_graph([s.name for s in schemas])
        by_name = {schema.name: schema for schema in schemas}
        self._fit(list(schemas))
        candidates = CandidateSet()
        for left_name, right_name in graph.edges:
            pair_candidates = self._match_pair_fitted(
                by_name[left_name], by_name[right_name]
            )
            candidates = candidates.merged_with(pair_candidates)
        return candidates


def coma_like(
    threshold: float = 0.60, max_delta: float = 0.08
) -> MatcherPipeline:
    """A COMA++-style pipeline.

    COMA++ composes many string-level matchers (including corpus-weighted
    and dictionary-based ones) with a weighted-average aggregation and
    selects pairs whose score is within a delta of each attribute's best
    score.  Tuned to ≈0.67 candidate precision on the BP corpus, matching
    the figure the paper reports for COMA++ on its BP dataset.
    """
    matcher = EnsembleMatcher(
        matchers=[
            EditDistanceMatcher(),
            JaroWinklerMatcher(),
            TfIdfTokenMatcher(Thesaurus()),
            TokenMatcher(),
            NGramMatcher(),
        ],
        weights=[1.0, 0.5, 2.5, 1.0, 1.0],
        aggregation=weighted_average,
    )
    selector = MaxDeltaSelector(delta=max_delta, threshold=threshold)
    return MatcherPipeline("coma_like", matcher, selector)


def amc_like(threshold: float = 0.65, top_k: int = 2) -> MatcherPipeline:
    """An AMC-style pipeline.

    AMC models matching as a process combining heterogeneous components; we
    mirror that with a weighted combination over hybrid and semantic
    matchers, plus a top-k selection per attribute that deliberately
    over-generates candidates (and hence one-to-one violations).
    """
    matcher = EnsembleMatcher(
        matchers=[
            MongeElkanMatcher(),
            TfIdfTokenMatcher(Thesaurus()),
            PrefixSuffixMatcher(),
            SynonymMatcher(),
            DataTypeMatcher(),
        ],
        weights=[1.0, 2.0, 0.5, 1.0, 0.5],
        aggregation=weighted_average,
    )
    selector = TopKSelector(k=top_k, threshold=threshold)
    return MatcherPipeline("amc_like", matcher, selector)


def simple_threshold(
    threshold: float = 0.6,
) -> MatcherPipeline:
    """A single-metric baseline pipeline (edit distance + threshold)."""
    return MatcherPipeline(
        "simple_threshold",
        EditDistanceMatcher(),
        ThresholdSelector(threshold=threshold),
    )


#: Registry of the matcher pipelines used throughout the experiments.
PIPELINES = {
    "coma_like": coma_like,
    "amc_like": amc_like,
    "simple_threshold": simple_threshold,
}
