"""Corpus-weighted token matching.

Attribute names inside one domain share many undiscriminating tokens
(``address``, ``line``, ``date``); a plain token-overlap matcher therefore
confuses ``billingStreet`` with ``billingCity``.  :class:`TfIdfTokenMatcher`
weights tokens by inverse document frequency over the whole corpus of
attribute names, so rare (discriminative) tokens dominate the score — the
corpus-based trick of COMA-family matchers.

The matcher is *fittable*: call :meth:`fit` with the network's schemas
before matching (pipelines do this automatically).  Token sets are derived
once per distinct name (shared registry profiles plus a per-matcher
synonym-folding cache), and the batch path computes whole schema-pair
blocks as a sparse IDF-weighted token-incidence matrix product.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.schema import Schema
from . import registry, string_metrics
from .base import CachedMatcher
from .semantic import Thesaurus


class TfIdfTokenMatcher(CachedMatcher):
    """IDF-weighted Jaccard over (optionally synonym-folded) token sets.

    similarity(A, B) = Σ_{t ∈ A∩B} idf(t) / Σ_{t ∈ A∪B} idf(t)

    Unknown tokens (never seen during fit) receive the maximum observed IDF,
    treating them as maximally discriminative.
    """

    name = "tfidf-token"

    def __init__(self, thesaurus: Optional[Thesaurus] = None):
        super().__init__()
        self.thesaurus = thesaurus
        self._idf: dict[str, float] = {}
        self._default_idf = 1.0
        self._token_cache: dict[str, frozenset[str]] = {}

    def _tokens(self, name: str) -> frozenset[str]:
        """The (optionally synonym-folded) token set of a name, memoised.

        Depends only on the tokenizer and the thesaurus — both fixed for the
        matcher's lifetime — so the cache survives :meth:`fit`.
        """
        return registry.folded_token_set(name, self.thesaurus, self._token_cache)

    def fit(self, schemas: Iterable[Schema]) -> "TfIdfTokenMatcher":
        """Learn token document frequencies from attribute names."""
        documents: list[frozenset[str]] = [
            self._tokens(attribute.name)
            for schema in schemas
            for attribute in schema
        ]
        total = len(documents)
        if total == 0:
            raise ValueError("fit requires at least one attribute")
        frequency: dict[str, int] = {}
        for document in documents:
            for token in document:
                frequency[token] = frequency.get(token, 0) + 1
        self._idf = {
            token: math.log(1.0 + total / count)
            for token, count in frequency.items()
        }
        self._default_idf = max(self._idf.values(), default=1.0)
        self._cache.clear()
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._idf)

    def idf(self, token: str) -> float:
        """IDF of one (already canonicalised) token."""
        return self._idf.get(token, self._default_idf)

    def _name_similarity(self, left_name: str, right_name: str) -> float:
        left_tokens = self._tokens(left_name)
        right_tokens = self._tokens(right_name)
        if not left_tokens and not right_tokens:
            return 1.0
        union = left_tokens | right_tokens
        if not union:
            return 0.0
        union_weight = sum(self.idf(t) for t in union)
        if union_weight == 0.0:
            return 0.0
        intersection_weight = sum(self.idf(t) for t in left_tokens & right_tokens)
        return intersection_weight / union_weight

    def _name_similarity_matrix(
        self, left_names: Sequence[str], right_names: Sequence[str]
    ) -> np.ndarray:
        return string_metrics.weighted_jaccard_matrix(
            [self._tokens(name) for name in left_names],
            [self._tokens(name) for name in right_names],
            self.idf,
        )
