"""Attribute-name tokenization and normalisation for first-line matchers.

Schema attribute names arrive in wildly mixed conventions — ``camelCase``,
``snake_case``, ``kebab-case``, abbreviated (``qty``, ``addr``), prefixed
(``txtFirstName``) — and the string matchers must compare them on a common
footing.  This module splits names into lowercase token sequences, strips
widget prefixes, and expands a curated abbreviation dictionary.

The functions here are pure and stateless; matchers do not call them per
pair.  The unique-name registry (:mod:`repro.matchers.registry`) invokes the
pipeline once per distinct attribute name and caches every derived view
(token sequence, normal forms, q-gram profiles) for the batch
``similarity_matrix`` kernels to assemble their inputs from.
"""

from __future__ import annotations

import re
from typing import Optional

#: Form-widget prefixes frequently glued onto attribute names by UI
#: extraction tools such as OntoBuilder (the paper's WebForm dataset).
WIDGET_PREFIXES: frozenset[str] = frozenset(
    {"txt", "fld", "inp", "input", "ctl", "cb", "chk", "sel", "ddl", "lbl"}
)

#: Common database/e-business abbreviations mapped to their expansions.
#: Multi-word expansions are space-separated; they become several tokens so
#: that e.g. ``fname`` and ``first_name`` produce identical token sequences.
ABBREVIATIONS: dict[str, str] = {
    "acct": "account",
    "addr": "address",
    "amt": "amount",
    "apt": "apartment",
    "attn": "attention",
    "avg": "average",
    "bday": "birthday",
    "bldg": "building",
    "cat": "category",
    "cmt": "comment",
    "cnt": "count",
    "co": "company",
    "ctry": "country",
    "cty": "city",
    "curr": "currency",
    "cust": "customer",
    "del": "delivery",
    "dept": "department",
    "desc": "description",
    "dob": "birth date",
    "doc": "document",
    "dt": "date",
    "eml": "email",
    "fname": "first name",
    "gpa": "grade point average",
    "hs": "high school",
    "id": "identifier",
    "inst": "institution",
    "intl": "international",
    "inv": "invoice",
    "lang": "language",
    "lname": "last name",
    "loc": "location",
    "mgr": "manager",
    "mi": "middle initial",
    "mname": "middle name",
    "mob": "mobile",
    "msg": "message",
    "nbr": "number",
    "no": "number",
    "num": "number",
    "ord": "order",
    "org": "organization",
    "pmt": "payment",
    "po": "purchase order",
    "pref": "preference",
    "prod": "product",
    "qty": "quantity",
    "ref": "reference",
    "reg": "registration",
    "req": "required",
    "sem": "semester",
    "ssn": "social security number",
    "st": "street",
    "std": "standard",
    "tel": "telephone",
    "univ": "university",
    "uom": "unit of measure",
    "ven": "vendor",
}

_CAMEL_BOUNDARY = re.compile(
    r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])|(?<=[A-Za-z])(?=[0-9])|(?<=[0-9])(?=[A-Za-z])"
)
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")


def split_identifier(name: str) -> list[str]:
    """Split an identifier on delimiters and camel-case boundaries.

    >>> split_identifier("billingAddressLine1")
    ['billing', 'address', 'line', '1']
    >>> split_identifier("PO_total_amt")
    ['po', 'total', 'amt']
    """
    pieces = [piece for piece in _NON_ALNUM.split(name) if piece]
    tokens: list[str] = []
    for piece in pieces:
        tokens.extend(t.lower() for t in _CAMEL_BOUNDARY.split(piece) if t)
    return tokens


def strip_widget_prefix(tokens: list[str]) -> list[str]:
    """Drop a leading UI-widget prefix token (``txtName`` → ``name``)."""
    if len(tokens) > 1 and tokens[0] in WIDGET_PREFIXES:
        return tokens[1:]
    return tokens


def expand_abbreviations(tokens: list[str]) -> list[str]:
    """Replace known abbreviations with their (possibly multi-word)
    expansions, token-wise."""
    expanded: list[str] = []
    for token in tokens:
        expansion = ABBREVIATIONS.get(token)
        if expansion is None:
            expanded.append(token)
        else:
            expanded.extend(expansion.split())
    return expanded


def segment_token(
    token: str, lexicon: frozenset[str] | set[str], min_piece: int = 2
) -> list[str]:
    """Split a concatenated identifier into lexicon words.

    Dynamic program minimising the number of pieces under the constraint
    that every piece is a lexicon word of at least ``min_piece`` characters.
    Tokens that are lexicon words themselves, or that admit no full
    segmentation, are returned unchanged.

    >>> from repro.matchers.lexicon import LEXICON
    >>> segment_token("billingstate", LEXICON)
    ['billing', 'state']
    """
    if token in lexicon or len(token) < 2 * min_piece:
        return [token]
    n = len(token)
    best: list[Optional[list[str]]] = [None] * (n + 1)
    best[0] = []
    for end in range(min_piece, n + 1):
        for start in range(max(0, end - 24), end - min_piece + 1):
            prefix = best[start]
            if prefix is None:
                continue
            piece = token[start:end]
            if piece in lexicon:
                candidate = prefix + [piece]
                if best[end] is None or len(candidate) < len(best[end]):
                    best[end] = candidate
    return best[n] if best[n] is not None else [token]


def tokenize(
    name: str,
    expand: bool = True,
    lexicon: Optional[frozenset[str]] = None,
) -> list[str]:
    """Full pipeline: split, strip widget prefix, expand, segment.

    This is the canonical token view every token-level matcher uses.  The
    segmentation step recovers word boundaries from concatenated styles
    (``billingstate`` → ``billing state``) using the domain ``lexicon``
    (default :data:`repro.matchers.lexicon.LEXICON`).
    """
    if lexicon is None:
        lexicon = _default_lexicon()
    tokens = strip_widget_prefix(split_identifier(name))
    if expand:
        tokens = expand_abbreviations(tokens)
    segmented: list[str] = []
    for token in tokens:
        segmented.extend(segment_token(token, lexicon))
    return segmented


def _default_lexicon() -> frozenset[str]:
    # Imported lazily to keep module import order simple.
    from .lexicon import LEXICON

    return LEXICON


def normalize(name: str, expand: bool = True) -> str:
    """Concatenated token form, the canonical string view of a name.

    >>> normalize("Cust_Addr")
    'customeraddress'
    """
    return "".join(tokenize(name, expand=expand))
