"""Fault injection for crowd dispatch: the chaos half of durability.

A :class:`FaultPlan` describes everything that can go wrong between a
session and its workers — transient answer timeouts, workers dropping out
of a question entirely, simulated answer latency, mid-run budget shocks and
a deterministic crash at a chosen round boundary — plus the
:class:`RetryPolicy` that decides how hard dispatch fights back.

Two invariants make the plan safe to wire through
:class:`~repro.crowd.session.CrowdSession`:

* **Isolation.**  All fault draws come from the plan's *own* seeded
  ``random.Random``.  Worker answer streams, assignment exploration and the
  sampler never see an extra draw, so a faulted run stays statistically
  comparable to the fault-free run at equal budget, and ``faults=None``
  leaves existing golden traces bit-identical.
* **Determinism.**  The plan's RNG state is captured by checkpoints
  (:mod:`repro.durability.checkpoint`), so re-executing journaled rounds
  after a crash re-draws the *same* faults and recovery stays bit-identical
  to the uninterrupted run.  ``crash_at_round`` is deliberately *not*
  re-armed on restore — the crash already happened; a recovered session
  must run past it.

Latency is simulated (a per-attempt exponential draw accumulated into the
round record), never slept: chaos tests and benches stay fast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional


class SimulatedCrash(RuntimeError):
    """Raised by a session when its fault plan kills it at a round boundary.

    Raised *after* the round's journal commit record is durable, modelling a
    process death between rounds — exactly the point crash-recovery
    equivalence tests kill at.
    """

    def __init__(self, round_index: int):
        super().__init__(f"simulated crash after round {round_index}")
        self.round_index = round_index


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff against transient (timeout) failures.

    A timed-out answer is retried up to ``max_retries`` times; attempt
    ``i`` waits ``backoff_base * backoff_factor**i`` simulated seconds
    before redispatching.  Dropouts are *not* retried — a worker who
    abandoned the question is gone for the round.
    """

    max_retries: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0.0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def delay(self, attempt: int) -> float:
        """Simulated wait before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt


class FaultPlan:
    """What goes wrong, when, and how the session should cope.

    Parameters
    ----------
    seed:
        Seeds the plan's private fault stream (isolation invariant above).
    timeout_probability:
        Per-attempt chance an answer times out.  Transient: a retry (under
        ``retry``) re-draws and usually succeeds.
    dropout_probability:
        Per-dispatch chance the worker abandons the question outright.
        Permanent for the question: retries do not help.
    latency_mean:
        Mean of the per-attempt exponential simulated-latency draw (0
        disables latency simulation entirely — no draw is made).
    question_timeout:
        Cap on one question's accumulated simulated time (answer latencies
        plus backoff waits); once exceeded, the question's remaining
        dispatches are skipped and counted as timeouts.
    crash_at_round:
        Raise :class:`SimulatedCrash` after this round commits.
    budget_shocks:
        ``round_index → delta`` applied to the ledger at the start of that
        round (negative deltas model funding cuts).
    retry:
        The :class:`RetryPolicy` for timed-out answers; ``None`` disables
        retries (graceful-degradation mode).
    requeue:
        Re-queue questions that collected zero votes for the next round
        (default); ``False`` drops them, the round is flagged either way.
    """

    def __init__(
        self,
        seed: int = 0,
        timeout_probability: float = 0.0,
        dropout_probability: float = 0.0,
        latency_mean: float = 0.05,
        question_timeout: Optional[float] = None,
        crash_at_round: Optional[int] = None,
        budget_shocks: Optional[Mapping[int, float]] = None,
        retry: Optional[RetryPolicy] = None,
        requeue: bool = True,
    ):
        for name, probability in (
            ("timeout_probability", timeout_probability),
            ("dropout_probability", dropout_probability),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if latency_mean < 0.0:
            raise ValueError("latency_mean must be non-negative")
        if question_timeout is not None and question_timeout <= 0.0:
            raise ValueError("question_timeout must be positive")
        if crash_at_round is not None and crash_at_round < 1:
            raise ValueError("crash_at_round must be a 1-based round index")
        self.seed = seed
        self.timeout_probability = timeout_probability
        self.dropout_probability = dropout_probability
        self.latency_mean = latency_mean
        self.question_timeout = question_timeout
        self.crash_at_round = crash_at_round
        self.budget_shocks: dict[int, float] = dict(budget_shocks or {})
        self.retry = retry
        self.requeue = requeue
        self.rng = random.Random(seed)

    def clone(self) -> "FaultPlan":
        """A fresh plan with the same knobs and a *reset* fault stream.

        Scenario harnesses hand one plan to many sessions; cloning keeps
        each session's fault draws independent of run order.
        """
        return FaultPlan(
            seed=self.seed,
            timeout_probability=self.timeout_probability,
            dropout_probability=self.dropout_probability,
            latency_mean=self.latency_mean,
            question_timeout=self.question_timeout,
            crash_at_round=self.crash_at_round,
            budget_shocks=self.budget_shocks,
            retry=self.retry,
            requeue=self.requeue,
        )

    # ------------------------------------------------------------------
    # Draws (each consumes the plan's private stream, never the session's)
    # ------------------------------------------------------------------
    def draw_dropout(self) -> bool:
        """Does this worker abandon the question?  (No draw when p=0.)"""
        if self.dropout_probability <= 0.0:
            return False
        return self.rng.random() < self.dropout_probability

    def draw_timeout(self) -> bool:
        """Does this dispatch attempt time out?  (No draw when p=0.)"""
        if self.timeout_probability <= 0.0:
            return False
        return self.rng.random() < self.timeout_probability

    def draw_latency(self) -> float:
        """Simulated seconds this attempt takes.  (No draw when mean=0.)"""
        if self.latency_mean <= 0.0:
            return 0.0
        return self.rng.expovariate(1.0 / self.latency_mean)

    def shock_for_round(self, round_index: int) -> float:
        """The budget delta scheduled for ``round_index`` (0 when none)."""
        return self.budget_shocks.get(round_index, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, timeout={self.timeout_probability:g}, "
            f"dropout={self.dropout_probability:g}, "
            f"crash_at_round={self.crash_at_round}, "
            f"retry={'on' if self.retry else 'off'})"
        )
