"""Durable session driving and crash recovery.

:func:`run_durable` wraps a session's run loop with durability: a
write-ahead :class:`~repro.durability.journal.FeedbackJournal` (attached
before the first transaction), an initial checkpoint, and an automatic
checkpoint every ``checkpoint_every`` transactions plus one at the end.

:func:`recover` rebuilds a live session after a crash:

1. parse the journal, discard the torn tail (a transaction the crash
   interrupted mid-write — its effects never reached the trace durably) and
   atomically truncate the file to the committed prefix;
2. restore the session from the last checkpoint;
3. *re-execute* every committed transaction past the checkpoint.  Sessions
   are deterministic given their checkpointed RNG states, so the redo
   regenerates exactly the journaled verdicts — the journal is armed as a
   verifier (:meth:`FeedbackJournal.expect`) and any divergence raises
   :class:`~repro.durability.journal.JournalReplayError` instead of
   silently corrupting state.

The recovered session carries the re-attached journal and can simply keep
running — :func:`run_durable` accepts it unchanged.  The crash-recovery
equivalence tests assert the strong property this design buys: a session
killed at *any* round boundary and recovered produces a final trace
bit-identical to the run that never crashed.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Optional

from ..core.reconciliation import ReconciliationSession, ReconciliationTrace
from ..crowd.session import CrowdSession, CrowdTrace
from .checkpoint import restore_session, save_checkpoint
from .journal import (
    FeedbackJournal,
    JournalReplayError,
    read_journal,
    truncate_to_committed,
)

#: File names inside a durable-session directory.
CHECKPOINT_FILE = "checkpoint.json"
JOURNAL_FILE = "journal.jsonl"


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` found and did."""

    #: ``"crowd"`` or ``"expert"``.
    session_kind: str
    #: Journal seq the restored checkpoint was taken at.
    checkpoint_seq: int
    #: Committed journal records past the checkpoint (verified during redo).
    records_replayed: int
    #: Complete transactions re-executed from the checkpoint.
    transactions_redone: int
    #: Torn-tail records discarded (the crash-interrupted transaction).
    records_discarded: int


def _paths(directory: "str | pathlib.Path") -> tuple[pathlib.Path, pathlib.Path]:
    directory = pathlib.Path(directory)
    return directory / CHECKPOINT_FILE, directory / JOURNAL_FILE


def run_durable(
    session: "CrowdSession | ReconciliationSession",
    directory: "str | pathlib.Path",
    *,
    checkpoint_every: int = 1,
    rounds: Optional[int] = None,
    questions: Optional[int] = None,
    budget: Optional[int] = None,
    effort_budget: Optional[float] = None,
    uncertainty_goal: Optional[float] = None,
) -> "CrowdTrace | ReconciliationTrace":
    """Run a session to its goal with journaling and auto-checkpoints.

    ``checkpoint_every`` counts transactions — rounds for a crowd session,
    steps for an expert one; ``0`` disables periodic checkpoints (the
    initial and final ones are always written).  Goal parameters mirror the
    sessions' own ``run``: ``rounds``/``questions``/``uncertainty_goal``
    for crowds, ``budget``/``effort_budget``/``uncertainty_goal`` for the
    single-expert loop.

    A :class:`~repro.durability.faults.SimulatedCrash` (or a real one)
    propagates out with the journal's committed prefix durable on disk;
    :func:`recover` picks up from there.
    """
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    checkpoint_path, journal_path = _paths(directory)
    is_crowd = isinstance(session, CrowdSession)
    if session.journal is None:
        session.journal = FeedbackJournal.create(
            journal_path, "crowd" if is_crowd else "expert"
        )
    save_checkpoint(session, checkpoint_path)
    if is_crowd:
        trace = session.trace
        current = trace.final_uncertainty
        while True:
            if rounds is not None and len(trace.rounds) >= rounds:
                break
            if uncertainty_goal is not None and current <= uncertainty_goal:
                break
            remaining = (
                questions - trace.questions_asked
                if questions is not None
                else None
            )
            record = session.round(max_questions=remaining)
            if record is None or not record.questions:
                break
            current = record.uncertainty
            if checkpoint_every and len(trace.rounds) % checkpoint_every == 0:
                save_checkpoint(session, checkpoint_path)
    else:
        trace = session.trace
        total = len(session.pnet.correspondences)
        current = trace.uncertainties[-1]
        while True:
            if budget is not None and len(trace.steps) >= budget:
                break
            if (
                effort_budget is not None
                and (len(trace.steps) + 1) / total > effort_budget + 1e-12
            ):
                break
            if uncertainty_goal is not None and current <= uncertainty_goal:
                break
            record = session.step()
            if record is None:
                break
            current = record.uncertainty
            if checkpoint_every and len(trace.steps) % checkpoint_every == 0:
                save_checkpoint(session, checkpoint_path)
    save_checkpoint(session, checkpoint_path)
    return trace


def recover(
    directory: "str | pathlib.Path",
) -> tuple["CrowdSession | ReconciliationSession", RecoveryReport]:
    """Restore a crashed durable session to exactly where it would have been.

    Returns the live session (journal re-attached, ready for more rounds or
    :func:`run_durable`) and a :class:`RecoveryReport` describing the redo.
    """
    checkpoint_path, journal_path = _paths(directory)
    header, committed, torn = read_journal(journal_path)
    if torn:
        truncate_to_committed(journal_path, header, committed)
    with open(checkpoint_path) as handle:
        document = json.load(handle)
    checkpoint_seq = int(document.get("journal_seq") or 0)
    pending = [
        record for record in committed if int(record["seq"]) > checkpoint_seq
    ]
    last_seq = int(committed[-1]["seq"]) if committed else checkpoint_seq
    journal = FeedbackJournal.resume(journal_path, next_seq=last_seq + 1)
    journal.expect(pending)
    session = restore_session(document, journal=journal)
    is_crowd = isinstance(session, CrowdSession)
    transactions_redone = 0
    last_delta: Optional[dict] = None
    for record in pending:
        kind = record.get("type")
        if kind == "delta":
            # Remember the write-ahead payload; the matching delta-commit
            # (if the crash let it land) triggers the re-execution.
            last_delta = record.get("delta")
        elif kind == "delta-commit":
            from ..io import delta_from_dict

            if last_delta is None:
                raise JournalReplayError(
                    "delta-commit without a preceding delta record"
                )
            delta = delta_from_dict(last_delta, session.pnet.network)
            # apply_delta re-appends both the delta and delta-commit
            # records, which the armed journal verifies against the log.
            session.apply_delta(delta)
            last_delta = None
            transactions_redone += 1
        elif kind == "round-commit" and is_crowd:
            session.round(max_questions=record.get("max_questions"))
            transactions_redone += 1
        elif kind == "step-commit" and not is_crowd:
            session.step()
            transactions_redone += 1
    if journal.replaying:
        raise JournalReplayError(
            "redo finished with journaled records unaccounted for: the "
            "restored session diverged from the journal"
        )
    return session, RecoveryReport(
        session_kind=document.get("session", "unknown"),
        checkpoint_seq=checkpoint_seq,
        records_replayed=len(pending),
        transactions_redone=transactions_redone,
        records_discarded=len(torn),
    )


__all__ = [
    "CHECKPOINT_FILE",
    "JOURNAL_FILE",
    "RecoveryReport",
    "recover",
    "run_durable",
]
