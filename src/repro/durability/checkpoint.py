"""Versioned checkpoints of live reconciliation sessions.

A checkpoint is one JSON document (``kind: "session-checkpoint"``, versioned
through the :mod:`repro.io` conventions) that captures *everything* a
session's future behaviour depends on:

* the matching network itself (embedded ``matching-network`` document, so a
  checkpoint is self-contained),
* the sample store — Ω* masks (hex strings), feedback F±, the exhaustion
  flag and version counter — plus both sampler RNG streams
  (``random.Random`` Mersenne state and the numpy generator's
  bit-generator state, both of which JSON round-trips exactly),
* the oracle / worker pool: per-worker memoised verdicts and answer-stream
  RNG positions,
* the session shell: strategy or assignment/aggregator state (by registry
  name), budget ledger, worker statistics, conflict counters, the
  assertion order the repair tie-break consults, the fault-injection
  re-queue, the full trace, and the fault plan (including its private RNG
  stream) when one is attached.

``save_checkpoint`` writes atomically (temp file + ``os.replace``);
``restore_session`` rebuilds a live session that continues the *same*
random streams — a restored run is bit-identical to one that never stopped,
which is the property :mod:`repro.durability.recovery` builds on.

Sessions backed by a :class:`~repro.core.probability.SampledEstimator` or a
:class:`~repro.shard.ShardedEstimator` are checkpointable: those are the
production paths (sharded checkpoints capture every shard's Ω* masks and
both of its RNG streams, plus the master stream), and the exact estimator's
state is a pure function of feedback anyway.
"""

from __future__ import annotations

import json
import os
import pathlib
import random

from ..core.correspondence import Correspondence
from ..core.correspondence import correspondence as corr_factory
from ..core.feedback import NoisyOracle, Oracle
from ..core.schema import Attribute
from ..core.probability import ProbabilisticNetwork, SampledEstimator
from ..core.reconciliation import (
    ReconciliationSession,
    ReconciliationStep,
    ReconciliationTrace,
)
from ..core.sampling import InstanceSampler, SampleStore
from ..core.selection import (
    ConfidenceSelection,
    EntropySelection,
    InformationGainSelection,
    LikelihoodSelection,
    RandomSelection,
    SelectionStrategy,
)
from ..crowd.assignment import ASSIGNMENTS, AssignmentPolicy
from ..crowd.aggregation import make_aggregator
from ..crowd.budget import BudgetLedger
from ..crowd.session import CrowdRound, CrowdSession, CrowdTrace
from ..crowd.workers import Worker, WorkerPool
from ..shard import ShardedEstimator, ShardedSampleStore
from ..io import (
    FORMAT_VERSION,
    FormatError,
    _check_version,
    correspondence_from_dict,
    correspondence_to_dict,
    network_from_dict,
    network_to_dict,
)
from .faults import FaultPlan, RetryPolicy

CHECKPOINT_KIND = "session-checkpoint"

#: Selection strategies restorable by name (mirrors the scenario registry;
#: kept local so durability never imports the experiments layer).
_STRATEGIES: dict[str, type[SelectionStrategy]] = {
    cls.name: cls
    for cls in (
        RandomSelection,
        InformationGainSelection,
        EntropySelection,
        LikelihoodSelection,
        ConfidenceSelection,
    )
}


def _json_default(value):
    """Coerce numpy scalars (bit-generator state fields) to Python ints."""
    try:
        return int(value)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        raise TypeError(f"not JSON serialisable: {value!r}") from None


def _rng_from_json(state) -> tuple:
    """A ``random.Random`` state round-tripped through JSON, re-tupled."""
    version, internal, gauss = state
    return (version, tuple(internal), gauss)


# ---------------------------------------------------------------------------
# Leaf codecs
# ---------------------------------------------------------------------------


def _corrs_to_list(corrs) -> list[dict]:
    return [correspondence_to_dict(corr) for corr in sorted(corrs)]


def _corrs_from_list(entries, schemas) -> list[Correspondence]:
    return [correspondence_from_dict(entry, schemas) for entry in entries]


def _detached_corr(entry: dict) -> Correspondence:
    """A correspondence resolved without consulting the network's schemas.

    Ground truths and memoised oracle verdicts may reference schemas a
    later network delta removed; attribute identity is the ``(schema,
    name)`` pair, so detached attributes compare equal to live ones
    wherever both exist.
    """
    return corr_factory(
        Attribute(schema=entry["source"]["schema"], name=entry["source"]["name"]),
        Attribute(schema=entry["target"]["schema"], name=entry["target"]["name"]),
    )


def _truth_from_list(entries) -> frozenset[Correspondence]:
    return frozenset(_detached_corr(entry) for entry in entries)


def _oracle_state_to_dict(oracle: NoisyOracle) -> dict:
    state = oracle.get_state()
    return {
        "rng": state["rng"],
        "verdicts": [
            [correspondence_to_dict(corr), verdict]
            for corr, verdict in state["verdicts"]
        ],
        "assertions_made": state["assertions_made"],
    }


def _oracle_state_from_dict(document: dict) -> dict:
    # Verdict memos are resolved detached: a network delta may have
    # removed the schemas of candidates the oracle already answered.
    return {
        "rng": _rng_from_json(document["rng"]),
        "verdicts": [
            [_detached_corr(entry), bool(verdict)]
            for entry, verdict in document["verdicts"]
        ],
        "assertions_made": document["assertions_made"],
    }


def _store_state_to_dict(store_state: dict) -> dict:
    """One SampleStore ``get_state`` dict, made JSON-shaped (hex masks)."""
    return {
        "sample_masks": [
            format(mask, "x") for mask in store_state["sample_masks"]
        ],
        "approved": _corrs_to_list(store_state["approved"]),
        "disapproved": _corrs_to_list(store_state["disapproved"]),
        "exhausted": store_state["exhausted"],
        "version": store_state["version"],
        "target_samples": store_state["target_samples"],
        "min_samples": store_state["min_samples"],
    }


def _store_state_from_dict(store_doc: dict, schemas) -> dict:
    return {
        "sample_masks": [int(mask, 16) for mask in store_doc["sample_masks"]],
        "approved": _corrs_from_list(store_doc["approved"], schemas),
        "disapproved": _corrs_from_list(store_doc["disapproved"], schemas),
        "exhausted": store_doc["exhausted"],
        "version": store_doc["version"],
        "target_samples": store_doc["target_samples"],
        "min_samples": store_doc["min_samples"],
    }


def _pnet_to_dict(pnet: ProbabilisticNetwork) -> dict:
    estimator = pnet.estimator
    if isinstance(estimator, ShardedEstimator):
        store = estimator.store
        return {
            "estimator": "sharded",
            "config": {
                "target_samples": store.target_samples,
                "min_samples": store.min_samples,
                "walk_steps": store.walk_steps,
                "restart_probability": store.restart_probability,
                "chains": store.chains,
                "max_shards": store.max_shards,
                "enumerate_limit": store.enumerate_limit,
                "parallel": store.parallel,
            },
            "approved": _corrs_to_list(store.feedback.approved),
            "disapproved": _corrs_to_list(store.feedback.disapproved),
            "version": store.version,
            "rng": store.rng.getstate(),
            "shards": [
                {
                    "store": _store_state_to_dict(shard.store.get_state()),
                    "sampler": shard.store.sampler.get_state(),
                }
                for shard in store.shards
            ],
        }
    if not isinstance(estimator, SampledEstimator):
        raise FormatError(
            "only SampledEstimator- or ShardedEstimator-backed sessions "
            "are checkpointable"
        )
    store = estimator.store
    return {
        "estimator": "sampled",
        "store": _store_state_to_dict(store.get_state()),
        "sampler": {
            "walk_steps": store.sampler.walk_steps,
            "restart_probability": store.sampler.restart_probability,
            "chains": store.sampler.chains,
            "state": store.sampler.get_state(),
        },
    }


def _sampler_state_from_json(state: dict) -> dict:
    return {
        "rng": _rng_from_json(state["rng"]),
        "np_rng": state["np_rng"],
    }


def _sharded_pnet_from_dict(document: dict, network) -> ProbabilisticNetwork:
    schemas = {schema.name: schema for schema in network.schemas}
    config = document["config"]
    state = {
        "approved": _corrs_from_list(document["approved"], schemas),
        "disapproved": _corrs_from_list(document["disapproved"], schemas),
        "version": document["version"],
        "rng": _rng_from_json(document["rng"]),
        "shards": [
            {
                "store": _store_state_from_dict(shard_doc["store"], schemas),
                "sampler": _sampler_state_from_json(shard_doc["sampler"]),
            }
            for shard_doc in document["shards"]
        ],
    }
    store = ShardedSampleStore.from_state(
        network,
        state,
        target_samples=config["target_samples"],
        min_samples=config["min_samples"],
        walk_steps=config["walk_steps"],
        restart_probability=config["restart_probability"],
        chains=config["chains"],
        max_shards=config["max_shards"],
        enumerate_limit=config["enumerate_limit"],
        parallel=config["parallel"],
    )
    return ProbabilisticNetwork(
        network, estimator=ShardedEstimator.from_store(store)
    )


def _pnet_from_dict(document: dict, network) -> ProbabilisticNetwork:
    kind = document.get("estimator")
    if kind == "sharded":
        return _sharded_pnet_from_dict(document, network)
    if kind != "sampled":
        raise FormatError(f"unknown estimator kind {kind!r}")
    schemas = {schema.name: schema for schema in network.schemas}
    sampler_doc = document["sampler"]
    sampler = InstanceSampler(
        network,
        walk_steps=sampler_doc["walk_steps"],
        restart_probability=sampler_doc["restart_probability"],
        # Checkpoints written before multi-chain sampling carry no chain
        # count; they were single-chain by construction.
        chains=sampler_doc.get("chains", 1),
    )
    sampler.set_state(sampler_doc["state"])
    store = SampleStore.from_state(
        network,
        sampler,
        _store_state_from_dict(document["store"], schemas),
    )
    return ProbabilisticNetwork(
        network, estimator=SampledEstimator.from_store(store)
    )


def faultplan_to_dict(plan: FaultPlan) -> dict:
    """Serialise a fault plan *including* its private RNG stream position."""
    return {
        "seed": plan.seed,
        "timeout_probability": plan.timeout_probability,
        "dropout_probability": plan.dropout_probability,
        "latency_mean": plan.latency_mean,
        "question_timeout": plan.question_timeout,
        "crash_at_round": plan.crash_at_round,
        "budget_shocks": [
            [round_index, delta]
            for round_index, delta in sorted(plan.budget_shocks.items())
        ],
        "retry": (
            None
            if plan.retry is None
            else {
                "max_retries": plan.retry.max_retries,
                "backoff_base": plan.retry.backoff_base,
                "backoff_factor": plan.retry.backoff_factor,
            }
        ),
        "requeue": plan.requeue,
        "rng": plan.rng.getstate(),
    }


def faultplan_from_dict(document: dict) -> FaultPlan:
    """Restore a fault plan mid-stream.

    ``crash_at_round`` is deliberately dropped: the crash already happened;
    re-arming it would kill the recovered session at the same boundary
    forever.
    """
    retry_doc = document.get("retry")
    plan = FaultPlan(
        seed=document["seed"],
        timeout_probability=document["timeout_probability"],
        dropout_probability=document["dropout_probability"],
        latency_mean=document["latency_mean"],
        question_timeout=document["question_timeout"],
        crash_at_round=None,
        budget_shocks={
            int(round_index): delta
            for round_index, delta in document["budget_shocks"]
        },
        retry=None if retry_doc is None else RetryPolicy(**retry_doc),
        requeue=document["requeue"],
    )
    plan.rng.setstate(_rng_from_json(document["rng"]))
    return plan


# ---------------------------------------------------------------------------
# Crowd sessions
# ---------------------------------------------------------------------------


def _crowd_round_to_dict(record: CrowdRound) -> dict:
    return {
        "index": record.index,
        "questions": [correspondence_to_dict(c) for c in record.questions],
        "verdicts": list(record.verdicts),
        "votes": [
            [[worker_id, verdict] for worker_id, verdict in votes]
            for votes in record.votes
        ],
        "conflicts_resolved": record.conflicts_resolved,
        "approvals_retracted": record.approvals_retracted,
        "truncated": record.truncated,
        "spent": record.spent,
        "answers": record.answers,
        "uncertainty": record.uncertainty,
        "effort": record.effort,
        "timeouts": record.timeouts,
        "dropouts": record.dropouts,
        "unanswered": [
            correspondence_to_dict(c) for c in record.unanswered
        ],
        "degraded": record.degraded,
        "latency": record.latency,
        "shock": record.shock,
    }


def _crowd_round_from_dict(document: dict, schemas) -> CrowdRound:
    return CrowdRound(
        index=document["index"],
        questions=tuple(
            correspondence_from_dict(entry, schemas)
            for entry in document["questions"]
        ),
        verdicts=tuple(bool(v) for v in document["verdicts"]),
        votes=tuple(
            tuple((worker_id, bool(verdict)) for worker_id, verdict in votes)
            for votes in document["votes"]
        ),
        conflicts_resolved=document["conflicts_resolved"],
        approvals_retracted=document["approvals_retracted"],
        truncated=document["truncated"],
        spent=document["spent"],
        answers=document["answers"],
        uncertainty=document["uncertainty"],
        effort=document["effort"],
        timeouts=document["timeouts"],
        dropouts=document["dropouts"],
        unanswered=tuple(
            correspondence_from_dict(entry, schemas)
            for entry in document["unanswered"]
        ),
        degraded=document["degraded"],
        latency=document["latency"],
        shock=document["shock"],
    )


def _crowd_session_to_dict(session: CrowdSession) -> dict:
    pool = session.pool
    truths = {worker.selective_matching for worker in pool}
    if len(truths) != 1:
        raise FormatError(
            "checkpointing expects one shared ground truth across the pool"
        )
    return {
        "kind": CHECKPOINT_KIND,
        "version": FORMAT_VERSION,
        "session": "crowd",
        "network": network_to_dict(session.pnet.network),
        "pnet": _pnet_to_dict(session.pnet),
        "k": session.k,
        "redundancy": session.redundancy,
        "criterion": session.criterion,
        "on_conflict": session.on_conflict,
        "diversify": session.diversify,
        "assignment": {
            "name": session.assignment.name,
            "state": session.assignment.get_state(),
        },
        "aggregator": {"name": session.aggregator.name},
        "ledger": session.ledger.get_state(),
        "stats": session.stats.get_state(),
        "conflicts_resolved": session.conflicts_resolved,
        "approvals_retracted": session.approvals_retracted,
        "deltas_applied": session.deltas_applied,
        "assertion_order": [
            [correspondence_to_dict(corr), position]
            for corr, position in session._assertion_order.items()
        ],
        "requeued": [
            correspondence_to_dict(corr) for corr in session._requeued
        ],
        "pool": {
            "truth": _corrs_to_list(next(iter(truths))),
            "workers": [
                {
                    "worker_id": worker.worker_id,
                    "error_rate": worker.error_rate,
                    "state": _oracle_state_to_dict(worker),
                }
                for worker in pool
            ],
        },
        "trace": {
            "initial_uncertainty": session.trace.initial_uncertainty,
            "rounds": [
                _crowd_round_to_dict(record)
                for record in session.trace.rounds
            ],
        },
        "faults": (
            None if session.faults is None else faultplan_to_dict(session.faults)
        ),
        "journal_seq": (
            None if session.journal is None else session.journal.seq
        ),
    }


def _crowd_session_from_dict(document: dict) -> CrowdSession:
    network = network_from_dict(document["network"])
    schemas = {schema.name: schema for schema in network.schemas}
    pnet = _pnet_from_dict(document["pnet"], network)
    pool_doc = document["pool"]
    truth = _truth_from_list(pool_doc["truth"])
    workers = []
    for entry in pool_doc["workers"]:
        worker = Worker(
            entry["worker_id"],
            truth,
            entry["error_rate"],
            rng=random.Random(),
        )
        worker.set_state(_oracle_state_from_dict(entry["state"]))
        workers.append(worker)
    assignment_doc = document["assignment"]
    try:
        assignment_cls = ASSIGNMENTS[assignment_doc["name"]]
    except KeyError:
        raise FormatError(
            f"unknown assignment policy {assignment_doc['name']!r}"
        ) from None
    assignment: AssignmentPolicy = assignment_cls()
    assignment.set_state(assignment_doc["state"])
    faults_doc = document.get("faults")
    session = CrowdSession(
        pnet,
        WorkerPool(workers),
        k=document["k"],
        redundancy=document["redundancy"],
        criterion=document["criterion"],
        assignment=assignment,
        aggregator=make_aggregator(document["aggregator"]["name"]),
        ledger=BudgetLedger.from_state(document["ledger"]),
        on_conflict=document["on_conflict"],
        diversify=document["diversify"],
        faults=None if faults_doc is None else faultplan_from_dict(faults_doc),
    )
    session.stats.set_state(document["stats"])
    session.conflicts_resolved = document["conflicts_resolved"]
    session.approvals_retracted = document["approvals_retracted"]
    # Version-1 checkpoints predate network deltas.
    session.deltas_applied = document.get("deltas_applied", 0)
    session._assertion_order = {
        correspondence_from_dict(entry, schemas): position
        for entry, position in document["assertion_order"]
    }
    session._requeued = _corrs_from_list(document["requeued"], schemas)
    trace_doc = document["trace"]
    session.trace = CrowdTrace(
        initial_uncertainty=trace_doc["initial_uncertainty"],
        rounds=[
            _crowd_round_from_dict(entry, schemas)
            for entry in trace_doc["rounds"]
        ],
    )
    return session


# ---------------------------------------------------------------------------
# Expert sessions
# ---------------------------------------------------------------------------


def _expert_session_to_dict(session: ReconciliationSession) -> dict:
    strategy = session.strategy
    if strategy.name not in _STRATEGIES:
        raise FormatError(
            f"selection strategy {strategy.name!r} is not checkpointable"
        )
    oracle = session.oracle
    if isinstance(oracle, NoisyOracle):
        oracle_doc = {
            "kind": "noisy",
            "truth": _corrs_to_list(oracle.selective_matching),
            "error_rate": oracle.error_rate,
            "state": _oracle_state_to_dict(oracle),
        }
    elif type(oracle) is Oracle:
        oracle_doc = {
            "kind": "perfect",
            "truth": _corrs_to_list(oracle.selective_matching),
            "assertions_made": oracle.assertions_made,
        }
    else:
        raise FormatError(
            f"oracle {type(oracle).__name__} is not checkpointable"
        )
    return {
        "kind": CHECKPOINT_KIND,
        "version": FORMAT_VERSION,
        "session": "expert",
        "network": network_to_dict(session.pnet.network),
        "pnet": _pnet_to_dict(session.pnet),
        "on_conflict": session.on_conflict,
        "strategy": {
            "name": strategy.name,
            "rng": strategy.rng.getstate(),
            "max_candidates": getattr(strategy, "max_candidates", None),
        },
        "oracle": oracle_doc,
        "conflicts_resolved": session.conflicts_resolved,
        "approvals_retracted": session.approvals_retracted,
        "deltas_applied": session.deltas_applied,
        "trace": {
            "initial_uncertainty": session.trace.initial_uncertainty,
            "steps": [
                {
                    "index": step.index,
                    "corr": correspondence_to_dict(step.correspondence),
                    "approved": step.approved,
                    "uncertainty": step.uncertainty,
                    "effort": step.effort,
                }
                for step in session.trace.steps
            ],
        },
        "journal_seq": (
            None if session.journal is None else session.journal.seq
        ),
    }


def _expert_session_from_dict(document: dict) -> ReconciliationSession:
    network = network_from_dict(document["network"])
    schemas = {schema.name: schema for schema in network.schemas}
    pnet = _pnet_from_dict(document["pnet"], network)
    strategy_doc = document["strategy"]
    strategy_cls = _STRATEGIES[strategy_doc["name"]]
    if strategy_cls is InformationGainSelection:
        strategy = strategy_cls(
            rng=random.Random(),
            max_candidates=strategy_doc.get("max_candidates"),
        )
    else:
        strategy = strategy_cls(rng=random.Random())
    strategy.rng.setstate(_rng_from_json(strategy_doc["rng"]))
    oracle_doc = document["oracle"]
    truth = _truth_from_list(oracle_doc["truth"])
    if oracle_doc["kind"] == "noisy":
        oracle: Oracle = NoisyOracle(
            truth, oracle_doc["error_rate"], rng=random.Random()
        )
        oracle.set_state(_oracle_state_from_dict(oracle_doc["state"]))
    elif oracle_doc["kind"] == "perfect":
        oracle = Oracle(truth)
        oracle.assertions_made = oracle_doc["assertions_made"]
    else:
        raise FormatError(f"unknown oracle kind {oracle_doc['kind']!r}")
    session = ReconciliationSession(
        pnet,
        oracle,
        strategy,
        on_conflict=document["on_conflict"],
    )
    session.conflicts_resolved = document["conflicts_resolved"]
    session.approvals_retracted = document["approvals_retracted"]
    # Version-1 checkpoints predate network deltas.
    session.deltas_applied = document.get("deltas_applied", 0)
    trace_doc = document["trace"]
    session.trace = ReconciliationTrace(
        initial_uncertainty=trace_doc["initial_uncertainty"],
        steps=[
            ReconciliationStep(
                index=entry["index"],
                correspondence=correspondence_from_dict(
                    entry["corr"], schemas
                ),
                approved=entry["approved"],
                uncertainty=entry["uncertainty"],
                effort=entry["effort"],
            )
            for entry in trace_doc["steps"]
        ],
    )
    return session


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def checkpoint_to_dict(
    session: "CrowdSession | ReconciliationSession",
) -> dict:
    """The checkpoint document of a live session."""
    if isinstance(session, CrowdSession):
        return _crowd_session_to_dict(session)
    if isinstance(session, ReconciliationSession):
        return _expert_session_to_dict(session)
    raise TypeError(f"cannot checkpoint {type(session).__name__}")


def session_from_dict(
    document: dict,
) -> "CrowdSession | ReconciliationSession":
    """Rebuild a live session from a checkpoint document."""
    _check_version(document, CHECKPOINT_KIND)
    kind = document.get("session")
    if kind == "crowd":
        return _crowd_session_from_dict(document)
    if kind == "expert":
        return _expert_session_from_dict(document)
    raise FormatError(f"unknown session kind {kind!r}")


def save_checkpoint(
    session: "CrowdSession | ReconciliationSession",
    path: "str | pathlib.Path",
) -> pathlib.Path:
    """Atomically write a session checkpoint (temp file + ``os.replace``).

    A crash mid-save therefore leaves either the previous checkpoint or the
    new one — never a torn file.
    """
    path = pathlib.Path(path)
    document = checkpoint_to_dict(session)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(document, handle, sort_keys=True, default=_json_default)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def restore_session(
    source: "str | pathlib.Path | dict",
    journal=None,
) -> "CrowdSession | ReconciliationSession":
    """Rebuild a live session from a checkpoint file (or parsed document).

    ``journal`` optionally re-attaches a
    :class:`~repro.durability.journal.FeedbackJournal` to the restored
    session (recovery does this after arming replay verification).
    """
    if isinstance(source, dict):
        document = source
    else:
        with open(source) as handle:
            document = json.load(handle)
    session = session_from_dict(document)
    session.journal = journal
    return session


__all__ = [
    "CHECKPOINT_KIND",
    "checkpoint_to_dict",
    "session_from_dict",
    "save_checkpoint",
    "restore_session",
    "faultplan_to_dict",
    "faultplan_from_dict",
]
