"""Durable sessions: checkpoint/restore, write-ahead journal, chaos.

Reconciliation is pay-as-you-go — a session may run for days of human (or
crowd) attention, and losing its state means paying for the same answers
twice.  This package makes sessions survive process death and misbehaving
workers:

* :mod:`~repro.durability.checkpoint` — versioned JSON checkpoints of full
  live session state (Ω* masks, feedback, RNG streams, ledger, worker
  memory, trace), with atomic :func:`~repro.durability.checkpoint.save_checkpoint`
  / :func:`~repro.durability.checkpoint.restore_session`;
* :mod:`~repro.durability.journal` — the write-ahead feedback journal:
  verdicts are fsync'd before integration and transactions end with commit
  records, so a crash never loses an integrated answer;
* :mod:`~repro.durability.faults` — deterministic fault injection
  (:class:`~repro.durability.faults.FaultPlan`): worker timeouts with
  retry/backoff, dropouts, simulated latency, budget shocks and crash
  points;
* :mod:`~repro.durability.recovery` — :func:`~repro.durability.recovery.run_durable`
  / :func:`~repro.durability.recovery.recover`: auto-checkpointing run
  loops and crash recovery that re-executes journaled transactions under
  replay verification, bit-identical to the uninterrupted run.
"""

from .checkpoint import (
    CHECKPOINT_KIND,
    checkpoint_to_dict,
    faultplan_from_dict,
    faultplan_to_dict,
    restore_session,
    save_checkpoint,
    session_from_dict,
)
from .faults import FaultPlan, RetryPolicy, SimulatedCrash
from .journal import (
    COMMIT_TYPES,
    FeedbackJournal,
    JOURNAL_KIND,
    JournalReplayError,
    read_journal,
    truncate_to_committed,
)
from .recovery import (
    CHECKPOINT_FILE,
    JOURNAL_FILE,
    RecoveryReport,
    recover,
    run_durable,
)

__all__ = [
    "CHECKPOINT_FILE",
    "CHECKPOINT_KIND",
    "COMMIT_TYPES",
    "FaultPlan",
    "FeedbackJournal",
    "JOURNAL_FILE",
    "JOURNAL_KIND",
    "JournalReplayError",
    "RecoveryReport",
    "RetryPolicy",
    "SimulatedCrash",
    "checkpoint_to_dict",
    "faultplan_from_dict",
    "faultplan_to_dict",
    "read_journal",
    "recover",
    "restore_session",
    "run_durable",
    "save_checkpoint",
    "session_from_dict",
    "truncate_to_committed",
]
