"""The write-ahead feedback journal: durable intent before integration.

Sessions append one JSON line per elicitation *before* feeding the verdict
through the feedback plumbing (``flush`` + ``os.fsync`` per record), then a
``round-commit`` / ``step-commit`` line once the whole transaction is in the
trace.  A crash therefore leaves the journal in one of two shapes:

* ends on a commit record — every journaled transaction is fully integrated
  in the last checkpoint-plus-redo state;
* ends mid-transaction (a *torn tail*, possibly with a half-written final
  line) — the tail's effects died with the process and are discarded on
  recovery, then re-executed live.

Replay does **not** inject journaled verdicts.  Sessions are deterministic
given their checkpointed RNG states, so recovery re-executes the committed
rounds and the journal serves as a *verifier*: :meth:`FeedbackJournal.expect`
arms the journal with the committed tail, and every re-executed append is
compared against the corresponding journaled record —
:class:`JournalReplayError` on any divergence — instead of being rewritten.
This is what makes crash recovery bit-identical to the uninterrupted run:
restored workers re-draw the same answers from the same RNG positions, and
the journal proves it.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque
from typing import Optional

from ..io import FORMAT_VERSION, SUPPORTED_VERSIONS, FormatError

#: Record types that delimit one committed transaction.  A
#: ``delta-commit`` seals a write-ahead network-delta transaction (the
#: preceding ``delta`` record carries the full payload, so recovery can
#: re-execute it); a crash between the two leaves a torn tail and the
#: delta never happened.
COMMIT_TYPES = ("round-commit", "step-commit", "delta-commit")

JOURNAL_KIND = "feedback-journal"


class JournalReplayError(RuntimeError):
    """A re-executed transaction diverged from its journaled record."""


class FeedbackJournal:
    """Append-only JSONL journal with fsync-before-integration semantics.

    Use :meth:`create` for a fresh run and :meth:`resume` after recovery;
    the constructor itself never touches the file.
    """

    def __init__(self, path: "str | pathlib.Path", next_seq: int = 1):
        self.path = pathlib.Path(path)
        self._next_seq = next_seq
        self._expected: deque[dict] = deque()
        self.replayed = 0

    @classmethod
    def create(cls, path: "str | pathlib.Path", session: str) -> "FeedbackJournal":
        """Start a fresh journal (truncating any previous file)."""
        journal = cls(path)
        header = {
            "kind": JOURNAL_KIND,
            "version": FORMAT_VERSION,
            "session": session,
        }
        with open(journal.path, "w") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    @classmethod
    def resume(cls, path: "str | pathlib.Path", next_seq: int) -> "FeedbackJournal":
        """Re-open an existing journal for appending after ``next_seq - 1``."""
        return cls(path, next_seq=next_seq)

    @property
    def seq(self) -> int:
        """Sequence number of the last record written (0 for a fresh log)."""
        return self._next_seq - 1

    @property
    def replaying(self) -> bool:
        """True while armed with expected records from a recovery."""
        return bool(self._expected)

    def expect(self, records: list[dict]) -> None:
        """Arm replay verification with the committed journal tail."""
        self._expected = deque(records)

    def append(self, record: dict) -> int:
        """Journal one record durably; returns its sequence number.

        While replaying, the record is matched against the next expected
        one instead of being written — the journal already holds it.
        """
        if self._expected:
            expected = self._expected.popleft()
            stamped = {"seq": expected.get("seq"), **record}
            if stamped != expected:
                raise JournalReplayError(
                    "re-executed record diverged from the journal: "
                    f"expected {expected!r}, got {stamped!r}"
                )
            self.replayed += 1
            self._next_seq = max(self._next_seq, int(expected["seq"]) + 1)
            return int(expected["seq"])
        stamped = {"seq": self._next_seq, **record}
        with open(self.path, "a") as handle:
            handle.write(json.dumps(stamped, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._next_seq += 1
        return stamped["seq"]


def read_journal(
    path: "str | pathlib.Path",
) -> tuple[dict, list[dict], list[dict]]:
    """Parse a journal into ``(header, committed, torn_tail)``.

    ``committed`` is every record up to and including the last commit
    record; ``torn_tail`` is whatever follows it — a transaction the crash
    interrupted, whose effects were never integrated durably.  A trailing
    half-written line (torn by the crash mid-write) is tolerated and folded
    into the torn tail's count implicitly by being unparseable-and-ignored.
    """
    lines = pathlib.Path(path).read_text().splitlines()
    if not lines:
        raise FormatError("empty journal file")
    header = json.loads(lines[0])
    if (
        header.get("kind") != JOURNAL_KIND
        or header.get("version") not in SUPPORTED_VERSIONS
    ):
        raise FormatError("not a feedback-journal file of a supported version")
    records: list[dict] = []
    for line in lines[1:]:
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            break  # torn final line: the crash hit mid-write
    last_commit = -1
    for position, record in enumerate(records):
        if record.get("type") in COMMIT_TYPES:
            last_commit = position
    committed = records[: last_commit + 1]
    torn = records[last_commit + 1 :]
    return header, committed, torn


def truncate_to_committed(
    path: "str | pathlib.Path",
    header: dict,
    committed: list[dict],
) -> None:
    """Atomically rewrite the journal without its torn tail."""
    path = pathlib.Path(path)
    tmp: Optional[pathlib.Path] = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in committed:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
