"""Service observability: per-tenant queue/latency counters.

Metrics are strictly *observational* — nothing in the serving path reads
them back, so wall-clock jitter in the latency sums can never leak into
a tenant's trace (the determinism contract stays with the sessions).
Thread-safe: scheduler callbacks fire from the event loop and executor
threads alike.
"""

from __future__ import annotations

import threading
from collections import Counter

__all__ = ["ServiceMetrics", "TenantMetrics"]


class TenantMetrics:
    """Counters for one tenant's command stream."""

    __slots__ = (
        "enqueued",
        "served",
        "rejected",
        "failed",
        "queue_depth",
        "max_queue_depth",
        "wait_seconds",
        "serve_seconds",
        "commands",
        "deltas_applied",
    )

    def __init__(self):
        self.enqueued = 0
        self.served = 0
        self.rejected = 0
        self.failed = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.wait_seconds = 0.0
        self.serve_seconds = 0.0
        self.commands: Counter = Counter()
        self.deltas_applied = 0

    def to_dict(self) -> dict:
        served = self.served
        return {
            "enqueued": self.enqueued,
            "served": served,
            "rejected": self.rejected,
            "failed": self.failed,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "wait_seconds": self.wait_seconds,
            "serve_seconds": self.serve_seconds,
            "mean_wait_seconds": self.wait_seconds / served if served else 0.0,
            "mean_serve_seconds": (
                self.serve_seconds / served if served else 0.0
            ),
            "commands": dict(self.commands),
            "deltas_applied": self.deltas_applied,
        }


class ServiceMetrics:
    """The service-wide ledger; one :class:`TenantMetrics` per tenant."""

    def __init__(self):
        self._tenants: dict[str, TenantMetrics] = {}
        self._lock = threading.Lock()

    def tenant(self, name: str) -> TenantMetrics:
        with self._lock:
            metrics = self._tenants.get(name)
            if metrics is None:
                metrics = self._tenants[name] = TenantMetrics()
            return metrics

    def record_enqueue(self, name: str, depth: int) -> None:
        with self._lock:
            metrics = self._tenants.setdefault(name, TenantMetrics())
            metrics.enqueued += 1
            metrics.queue_depth = depth
            metrics.max_queue_depth = max(metrics.max_queue_depth, depth)

    def record_rejected(self, name: str) -> None:
        with self._lock:
            self._tenants.setdefault(name, TenantMetrics()).rejected += 1

    def record_start(self, name: str, waited: float, depth: int) -> None:
        with self._lock:
            metrics = self._tenants.setdefault(name, TenantMetrics())
            metrics.wait_seconds += waited
            metrics.queue_depth = depth

    def record_done(
        self, name: str, op: str, elapsed: float, *, failed: bool = False
    ) -> None:
        with self._lock:
            metrics = self._tenants.setdefault(name, TenantMetrics())
            metrics.serve_seconds += elapsed
            metrics.commands[op] += 1
            if failed:
                metrics.failed += 1
            else:
                metrics.served += 1
            if op in ("apply_delta", "rescore") and not failed:
                metrics.deltas_applied += 1

    def snapshot(self) -> dict:
        """Plain-data view of every tenant's counters (for reports)."""
        with self._lock:
            return {
                name: metrics.to_dict()
                for name, metrics in sorted(self._tenants.items())
            }
