"""Multi-tenant reconciliation service: shared pools, fair scheduling.

The online half of the pay-as-you-go story: instead of one offline
session per run, :class:`ReconciliationService` interleaves many named
tenant sessions — each with its own RNG streams, feedback and optional
durability directory — over shared resources:

* :mod:`repro.service.registry` — named tenant admission and removal;
* :mod:`repro.service.scheduler` — bounded queues, fair (round-robin or
  deficit-weighted) dispatch, backpressure and admission control;
* :mod:`repro.service.catalog` — cross-tenant cache of pure-function
  artefacts (compiled sub-networks, enumerated fills, delta results);
* :mod:`repro.service.metrics` — per-tenant queue/latency counters;
* :mod:`repro.service.service` — the assembled front-end.

The headline invariant is determinism under interleaving: any schedule
of N tenants is bit-identical, per tenant, to running that tenant's
commands alone (``tests/test_service_equivalence.py``).
"""

from ..shard.pool import PoolClosedError, ShardWorkerPool
from .catalog import ShardCatalog
from .metrics import ServiceMetrics, TenantMetrics
from .registry import SessionRegistry, Tenant
from .scheduler import AdmissionError, RequestScheduler, SchedulerClosedError
from .service import ReconciliationService

__all__ = [
    "AdmissionError",
    "PoolClosedError",
    "ReconciliationService",
    "RequestScheduler",
    "SchedulerClosedError",
    "ServiceMetrics",
    "SessionRegistry",
    "ShardCatalog",
    "ShardWorkerPool",
    "Tenant",
    "TenantMetrics",
]
