"""The batch front-end: many tenant sessions over shared resources.

:class:`ReconciliationService` assembles the package: a
:class:`~repro.service.registry.SessionRegistry` of named tenants, a
:class:`~repro.service.scheduler.RequestScheduler` dispatching their
commands fairly, one shared :class:`~repro.shard.pool.ShardWorkerPool`
handed to every tenant's sharded store, a
:class:`~repro.service.catalog.ShardCatalog` of reusable compiles and
fills, and :class:`~repro.service.metrics.ServiceMetrics` over it all.

**The determinism contract is the headline invariant**: any
interleaving of N tenants' command streams produces, per tenant,
bit-identical traces (selections, verdicts, uncertainties, probability
vectors) to running that tenant's commands alone and in order.  It
holds by construction — tenants share *no mutable sampling state*:

* sessions own their RNG streams, feedback and stores outright;
* the scheduler keeps at most one command per tenant in flight, so a
  tenant's commands run in submission order;
* the catalog caches only pure functions of the network (compiled
  sub-networks, unconditioned enumerated fills, delta results), so a
  hit returns exactly what the tenant would have computed;
* the worker pool routes by (client, shard) but every job ships its
  authoritative store/sampler state — placement cannot change results.

``tests/test_service_equivalence.py`` pins the contract differentially
(N concurrent tenants vs. the same programs run sequentially).

Per-tenant ``checkpoint_dir`` mirrors the ``run_durable`` protocol —
journal creation plus initial/per-transaction checkpoints — so a
service-run tenant's directory feeds :func:`repro.durability.recover`
unchanged, and a recovered session can be re-admitted under its old
name (the chaos harness does exactly this).
"""

from __future__ import annotations

import asyncio
import numbers
from typing import Optional

from ..core.delta import NetworkDelta
from ..durability.checkpoint import save_checkpoint
from ..durability.journal import FeedbackJournal
from ..durability.recovery import CHECKPOINT_FILE, JOURNAL_FILE
from ..shard.pool import ShardWorkerPool
from .catalog import ShardCatalog
from .metrics import ServiceMetrics
from .registry import SessionRegistry, Tenant
from .scheduler import RequestScheduler

__all__ = ["ReconciliationService"]

#: Command ops that move session state (and hence hit the checkpoint
#: cadence); ``query`` is read-only.
MUTATING_OPS = ("step", "round", "apply_delta", "rescore")


class ReconciliationService:
    """Async multi-tenant front-end over shared shard infrastructure.

    ``workers`` spins up the shared :class:`ShardWorkerPool` (``None``
    leaves tenants on their sequential refill paths — the right default
    on single-core boxes, where the catalog, not parallelism, is the
    throughput lever).  ``concurrency``, ``policy``, ``max_pending`` and
    ``admission`` parameterise the scheduler; ``max_networks`` bounds
    the catalog's generation LRU.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        steal_threshold: int = 2,
        concurrency: int = 2,
        policy: str = "round-robin",
        max_pending: int = 16,
        admission: str = "wait",
        max_networks: int = 4,
    ):
        self.catalog = ShardCatalog(max_networks=max_networks)
        self.pool = (
            ShardWorkerPool(workers, steal_threshold=steal_threshold)
            if workers is not None and workers > 0
            else None
        )
        self.registry = SessionRegistry()
        self.metrics = ServiceMetrics()
        self.scheduler = RequestScheduler(
            self._execute,
            concurrency=concurrency,
            policy=policy,
            max_pending=max_pending,
            admission=admission,
            metrics=self.metrics,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def add_tenant(
        self,
        name: str,
        session,
        *,
        weight: int = 1,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
    ) -> Tenant:
        """Admit a session; with ``checkpoint_dir`` it becomes durable.

        Durable admission performs the ``run_durable`` opening protocol:
        create the write-ahead journal if the session has none (a
        recovered session arrives with its journal already armed) and
        write the initial checkpoint.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        tenant = self.registry.register(
            name,
            session,
            weight=weight,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
        try:
            if tenant.checkpoint_dir is not None:
                tenant.checkpoint_dir.mkdir(parents=True, exist_ok=True)
                if session.journal is None:
                    session.journal = FeedbackJournal.create(
                        tenant.checkpoint_dir / JOURNAL_FILE, tenant.kind
                    )
                save_checkpoint(
                    session, tenant.checkpoint_dir / CHECKPOINT_FILE
                )
            self.scheduler.add_tenant(name, weight=weight)
        except BaseException:
            self.registry.remove(name)
            raise
        return tenant

    def remove_tenant(self, name: str, *, checkpoint: bool = True) -> Tenant:
        """Evict a tenant (idle queues required), final checkpoint included.

        ``checkpoint=False`` skips the closing checkpoint — the right
        call after a crash, when the in-memory session is suspect and
        the durable directory's journal is the authority.
        """
        self.scheduler.remove_tenant(name)
        tenant = self.registry.remove(name)
        if checkpoint and tenant.checkpoint_dir is not None:
            save_checkpoint(
                tenant.session, tenant.checkpoint_dir / CHECKPOINT_FILE
            )
        return tenant

    # ------------------------------------------------------------------
    # Command execution (runs in scheduler executor threads)
    # ------------------------------------------------------------------
    def _execute(self, name: str, command: dict):
        tenant = self.registry.get(name)
        session = tenant.session
        op = command.get("op")
        if op == "step":
            if tenant.kind != "expert":
                raise ValueError(f"tenant {name!r} is a crowd session; "
                                 "use the 'round' command")
            out = session.step()
        elif op == "round":
            if tenant.kind != "crowd":
                raise ValueError(f"tenant {name!r} is an expert session; "
                                 "use the 'step' command")
            out = session.round(max_questions=command.get("max_questions"))
        elif op == "apply_delta":
            out = self._apply_delta(session, command["delta"])
        elif op == "rescore":
            delta = NetworkDelta(
                rescore=self._resolve_rescore(session, command["updates"])
            )
            out = self._apply_delta(session, delta)
        elif op == "query":
            out = self._query(tenant)
        else:
            raise ValueError(f"unknown command op {op!r}")
        if op in MUTATING_OPS and tenant.checkpoint_dir is not None:
            tenant.transactions += 1
            if (
                tenant.checkpoint_every
                and tenant.transactions % tenant.checkpoint_every == 0
            ):
                save_checkpoint(
                    session, tenant.checkpoint_dir / CHECKPOINT_FILE
                )
        return out

    def _apply_delta(self, session, delta: NetworkDelta) -> dict:
        """Apply ``delta``, sharing one recompile across the fleet.

        The catalog keys results by (live network, delta): the first
        tenant pays ``apply_delta``'s incremental compile, every other
        tenant on the same generation adopts the same
        :class:`~repro.core.delta.DeltaResult` — same successor network
        object, zero extra engine work.
        """
        network = session.pnet.network
        result = self.catalog.delta_result(
            network, delta, lambda: network.apply_delta(delta)
        )
        session.apply_delta(delta, result=result)
        return {
            "structural": result.structural,
            "rescored": len(result.rescored_indices),
            "removed": len(result.removed_correspondences),
            "candidates": len(result.network.correspondences),
        }

    @staticmethod
    def _resolve_rescore(session, updates):
        """Normalise rescore updates; integer keys are engine indices."""
        items = updates.items() if hasattr(updates, "items") else updates
        correspondences = session.pnet.network.correspondences
        resolved = []
        for key, score in items:
            if isinstance(key, numbers.Integral):
                key = correspondences[key]
            resolved.append((key, float(score)))
        return tuple(resolved)

    @staticmethod
    def _query(tenant: Tenant) -> dict:
        session = tenant.session
        if tenant.kind == "crowd":
            trace = session.trace
            return {
                "kind": "crowd",
                "rounds": len(trace.rounds),
                "questions": trace.questions_asked,
                "uncertainty": trace.final_uncertainty,
                "deltas_applied": session.deltas_applied,
            }
        trace = session.trace
        return {
            "kind": "expert",
            "steps": len(trace.steps),
            "uncertainty": session.uncertainty(),
            "effort": session.effort(),
            "deltas_applied": session.deltas_applied,
        }

    # ------------------------------------------------------------------
    # Async surface
    # ------------------------------------------------------------------
    async def submit(self, name: str, command: dict):
        """Enqueue one command for ``name``; resolves to its result."""
        return await self.scheduler.submit(name, command)

    async def drain(self) -> None:
        await self.scheduler.drain()

    async def aclose(self, *, drain: bool = True) -> None:
        await self.scheduler.aclose(drain=drain)
        self.close()

    # ------------------------------------------------------------------
    # Sync conveniences
    # ------------------------------------------------------------------
    def run_programs(self, programs: dict) -> dict:
        """Run per-tenant command lists concurrently; results per tenant.

        One client task per tenant submits its commands *in order*
        (each awaiting the previous result — the service interleaves
        across tenants, never within one).  A command that raises ends
        that tenant's program; the exception object takes the result's
        place so other tenants run to completion regardless (the chaos
        harness relies on this).
        """
        results: dict[str, list] = {}

        async def client(name, commands):
            out = results[name] = []
            for command in commands:
                try:
                    out.append(await self.submit(name, command))
                except Exception as error:  # noqa: BLE001 - per-tenant fault wall
                    out.append(error)
                    break

        async def main():
            await asyncio.gather(
                *(client(name, list(cmds)) for name, cmds in programs.items())
            )
            await self.scheduler.drain()
            return results

        return asyncio.run(main())

    def stats(self) -> dict:
        """Service-wide observability: tenants, catalog, pool."""
        report = {
            "tenants": self.metrics.snapshot(),
            "catalog": self.catalog.stats(),
        }
        if self.pool is not None:
            pool = self.pool.stats()
            report["pool"] = {
                "workers": pool.workers,
                "submitted": pool.submitted,
                "affinity_hits": pool.affinity_hits,
                "affinity_misses": pool.affinity_misses,
                "steals": pool.steals,
                "cache_refreshes": pool.cache_refreshes,
                "hit_rate": pool.hit_rate,
                "per_slot": list(pool.per_slot),
            }
        return report

    def close(self) -> None:
        """Release shared resources (idempotent, sync).

        Final checkpoints are written for durable tenants, tenant stores
        drop their *owned* pools, and the shared worker pool shuts down.
        """
        if self._closed:
            return
        self._closed = True
        for tenant in self.registry.tenants():
            if tenant.checkpoint_dir is not None:
                save_checkpoint(
                    tenant.session, tenant.checkpoint_dir / CHECKPOINT_FILE
                )
            store = getattr(
                getattr(tenant.session.pnet, "estimator", None), "store", None
            )
            if store is not None and hasattr(store, "close"):
                store.close()
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ReconciliationService":
        if self._closed:
            raise RuntimeError("cannot re-enter a closed service")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReconciliationService({len(self.registry)} tenants, "
            f"policy={self.scheduler.policy!r})"
        )
