"""Cross-tenant catalog of reusable shard artefacts.

Many tenants of one service reconcile the *same* network (different
seeds, strategies, or feedback).  Three expensive artefacts depend only
on the network — not on any tenant's RNG or feedback — so computing them
once and sharing them is bit-identical to recomputing per tenant:

* **compiled sub-networks** — ``_shard_subnetwork`` output is a pure
  function of (network, shard indices);
* **enumerated initial fills** — a small shard's unconditioned Ω is
  enumerated (no RNG consumed), so the post-fill store state is a pure
  function of (sub-network, sampling knobs);
* **delta results** — ``apply_network_delta`` is a pure function of
  (network, delta), and every tenant applying the same delta to the
  same network can share one ``DeltaResult`` (hence one successor
  network and one recompiled engine).

On the single-core boxes this repo targets, this sharing — not process
parallelism — is the service's throughput lever: N tenants over one
network pay one compile instead of N.

Entries are grouped per *network generation* and the generations form a
small LRU holding **strong** references: under a sustained delta stream
old networks retire quickly, and dropping a generation drops every
dependent sub-network, fill and delta result with it, bounding memory.
(The strong ref also keeps ``id(network)`` valid for exactly as long as
the key is live, so the id-keyed lookup cannot alias a recycled
address.)

All methods are lock-guarded — service tenants call in from multiple
executor threads.  The shard layer consumes this duck-typed (see
``ShardedSampleStore``); nothing here imports the shard layer at module
scope, so there is no cycle.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["ShardCatalog"]


def _copy_store_state(state: dict) -> dict:
    """A mutation-safe copy of a sample-store state dict.

    Stores mutate their mask/feedback lists in place after adoption, so
    the catalog must never hand out (or keep) a list any store aliases.
    One level of list-copying suffices: the entries are ints and frozen
    ``Correspondence`` objects.
    """
    return {
        key: list(value) if isinstance(value, list) else value
        for key, value in state.items()
    }


class _Generation:
    """Everything cached for one network object."""

    __slots__ = ("network", "subnets", "fills", "deltas")

    def __init__(self, network):
        self.network = network
        self.subnets: dict[tuple, object] = {}
        self.fills: dict[tuple, dict] = {}
        self.deltas: dict[object, object] = {}


class ShardCatalog:
    """Shared compile/fill/delta cache across a service's tenants.

    ``max_networks`` bounds how many network generations stay cached;
    the default of 4 covers the live network plus a short delta history
    (tenants mid-command may briefly lag one generation behind).
    """

    def __init__(self, max_networks: int = 4):
        if max_networks < 1:
            raise ValueError("max_networks must be positive")
        self.max_networks = max_networks
        self._generations: "OrderedDict[int, _Generation]" = OrderedDict()
        self._lock = threading.Lock()
        self.subnet_hits = 0
        self.subnet_misses = 0
        self.fill_hits = 0
        self.fill_misses = 0
        self.delta_hits = 0
        self.delta_misses = 0

    def _generation(self, network) -> _Generation:
        """The (possibly new) generation entry for ``network``; locked."""
        key = id(network)
        generation = self._generations.get(key)
        if generation is None:
            generation = _Generation(network)
            self._generations[key] = generation
            while len(self._generations) > self.max_networks:
                self._generations.popitem(last=False)
        else:
            self._generations.move_to_end(key)
        return generation

    # ------------------------------------------------------------------
    # Compiled sub-networks
    # ------------------------------------------------------------------
    def subnetwork(self, network, indices: tuple, build: Callable):
        """The compiled sub-network over ``indices``, shared verbatim.

        Sub-networks are immutable once compiled (stores condition their
        *own* feedback, never the network), so every tenant can hold the
        same object.
        """
        with self._lock:
            generation = self._generation(network)
            cached = generation.subnets.get(indices)
            if cached is not None:
                self.subnet_hits += 1
                return cached
            self.subnet_misses += 1
        built = build()
        with self._lock:
            generation = self._generation(network)
            return generation.subnets.setdefault(indices, built)

    # ------------------------------------------------------------------
    # Enumerated initial fills
    # ------------------------------------------------------------------
    def enumerated_fill(self, network, key: tuple) -> Optional[dict]:
        """A copy of the cached unconditioned fill state, if published."""
        with self._lock:
            generation = self._generation(network)
            state = generation.fills.get(key)
            if state is None:
                self.fill_misses += 1
                return None
            self.fill_hits += 1
            return _copy_store_state(state)

    def put_enumerated_fill(self, network, key: tuple, state: dict) -> None:
        with self._lock:
            generation = self._generation(network)
            if key not in generation.fills:
                generation.fills[key] = _copy_store_state(state)

    # ------------------------------------------------------------------
    # Delta results
    # ------------------------------------------------------------------
    def delta_result(self, network, delta, compute: Callable):
        """The shared :class:`~repro.core.delta.DeltaResult` for ``delta``.

        The first tenant to apply ``delta`` against ``network`` pays the
        incremental recompile; every other tenant adopts the *same*
        result object — and therefore the same successor network, which
        keeps the whole fleet in one catalog generation instead of N.

        Unlike sub-network builds, ``compute`` runs *under* the lock:
        deltas are rare and expensive, and a fleet applying the same
        delta concurrently should block behind one recompile and then
        hit, not burn N-1 duplicate compiles (``compute`` must therefore
        never call back into the catalog).
        """
        with self._lock:
            generation = self._generation(network)
            cached = generation.deltas.get(delta)
            if cached is not None:
                self.delta_hits += 1
                return cached
            self.delta_misses += 1
            result = compute()
            generation.deltas[delta] = result
            # Pre-register the successor so tenants touching it next do
            # not race the LRU into evicting the generation their shards
            # are being rebuilt against.
            self._generation(result.network)
            return result

    def stats(self) -> dict:
        with self._lock:
            return {
                "networks": len(self._generations),
                "subnet_hits": self.subnet_hits,
                "subnet_misses": self.subnet_misses,
                "fill_hits": self.fill_hits,
                "fill_misses": self.fill_misses,
                "delta_hits": self.delta_hits,
                "delta_misses": self.delta_misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardCatalog({len(self._generations)} network generations)"
