"""Fair asyncio dispatch of tenant commands over bounded queues.

The scheduler is the service's concurrency spine: every tenant gets a
bounded FIFO of pending commands, a dispatcher task picks the next
(tenant, command) pair under a fairness policy, and execution happens in
worker threads so the event loop never blocks on sampling work.

Three properties matter more than raw throughput:

* **per-tenant order** — at most one command per tenant is in flight,
  so a tenant's commands execute in submission order whatever the
  interleaving with other tenants (the determinism contract needs
  nothing stronger: tenants share only pure-function caches);
* **backpressure** — a full queue either rejects
  (:class:`AdmissionError`) or suspends the submitter until space
  frees, per the admission policy; a queue can never grow unboundedly;
* **fairness** — ``round-robin`` serves ready tenants cyclically;
  ``deficit`` is credit-based weighted round-robin (a tenant with
  weight *w* gets *w* grants per refill cycle), so a heavy tenant
  cannot starve light ones and a weighted tenant provably gets its
  share.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Optional

__all__ = ["AdmissionError", "RequestScheduler", "SchedulerClosedError"]

POLICIES = ("round-robin", "deficit")
ADMISSIONS = ("wait", "reject")


class AdmissionError(RuntimeError):
    """A tenant's queue is full and the admission policy rejects."""


class SchedulerClosedError(RuntimeError):
    """The scheduler has been closed; no further submissions."""


class RequestScheduler:
    """Bounded, fair, at-most-one-in-flight-per-tenant dispatch.

    ``execute`` is a synchronous callable ``(tenant, command) -> result``
    run in the loop's default executor; ``concurrency`` caps how many
    tenants' commands run simultaneously.  The scheduler is loop-
    agnostic: all asyncio state is (re)built lazily inside the running
    loop, so successive ``asyncio.run`` entries (each draining fully)
    reuse one scheduler instance.
    """

    def __init__(
        self,
        execute: Callable,
        *,
        concurrency: int = 2,
        policy: str = "round-robin",
        max_pending: int = 16,
        admission: str = "wait",
        metrics=None,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be positive")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; one of {POLICIES}")
        if admission not in ADMISSIONS:
            raise ValueError(
                f"unknown admission {admission!r}; one of {ADMISSIONS}"
            )
        self._execute = execute
        self.concurrency = concurrency
        self.policy = policy
        self.max_pending = max_pending
        self.admission = admission
        self.metrics = metrics
        self._queues: dict[str, deque] = {}
        self._weights: dict[str, int] = {}
        self._credits: dict[str, int] = {}
        self._ring: list[str] = []
        self._rr_next = 0
        self._busy: set[str] = set()
        self._inflight = 0
        self._closed = False
        # Loop-bound state, rebuilt whenever the running loop changes.
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._dispatcher: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Tenant membership
    # ------------------------------------------------------------------
    def add_tenant(self, name: str, weight: int = 1) -> None:
        if name in self._queues:
            raise ValueError(f"tenant {name!r} already scheduled")
        self._queues[name] = deque()
        self._weights[name] = weight
        self._credits[name] = weight
        self._ring.append(name)

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant; its queue must be empty and nothing in flight."""
        queue = self._queues.get(name)
        if queue is None:
            raise KeyError(f"no tenant named {name!r}")
        if queue or name in self._busy:
            raise RuntimeError(
                f"tenant {name!r} still has pending or in-flight commands"
            )
        del self._queues[name]
        del self._weights[name]
        del self._credits[name]
        index = self._ring.index(name)
        self._ring.remove(name)
        if index < self._rr_next:
            self._rr_next -= 1
        if self._ring:
            self._rr_next %= len(self._ring)
        else:
            self._rr_next = 0

    def queue_depth(self, name: str) -> int:
        return len(self._queues[name])

    @property
    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def inflight(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------
    # Loop plumbing
    # ------------------------------------------------------------------
    def _bind_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        if self._inflight or any(self._queues.values()):
            raise RuntimeError(
                "scheduler re-entered from a new event loop with work "
                "still pending — drain before leaving the previous loop"
            )
        self._loop = loop
        self._wakeup = asyncio.Event()
        self._space = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._semaphore = asyncio.Semaphore(self.concurrency)
        self._dispatcher = loop.create_task(self._dispatch())

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, name: str, command: dict):
        """Enqueue one command; resolves to its result (or raises).

        Suspends (``admission="wait"``) or raises :class:`AdmissionError`
        (``"reject"``) while the tenant's queue is at ``max_pending``.
        """
        if self._closed:
            raise SchedulerClosedError("scheduler is closed")
        self._bind_loop()
        queue = self._queues.get(name)
        if queue is None:
            raise KeyError(f"no tenant named {name!r}")
        while len(queue) >= self.max_pending:
            if self.admission == "reject":
                if self.metrics is not None:
                    self.metrics.record_rejected(name)
                raise AdmissionError(
                    f"tenant {name!r} has {len(queue)} pending commands "
                    f"(max_pending={self.max_pending})"
                )
            self._space.clear()
            await self._space.wait()
            if self._closed:
                raise SchedulerClosedError("scheduler closed while waiting")
        future = self._loop.create_future()
        queue.append((command, future, time.perf_counter()))
        self._idle.clear()
        if self.metrics is not None:
            self.metrics.record_enqueue(name, len(queue))
        self._wakeup.set()
        return await future

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _next_tenant(self) -> Optional[str]:
        ready = [
            name
            for name in self._ring
            if name not in self._busy and self._queues[name]
        ]
        if not ready:
            return None
        if self.policy == "round-robin":
            ready_set = set(ready)
            for offset in range(len(self._ring)):
                index = (self._rr_next + offset) % len(self._ring)
                name = self._ring[index]
                if name in ready_set:
                    self._rr_next = (index + 1) % len(self._ring)
                    return name
            return None  # pragma: no cover - ready is non-empty
        # Deficit round-robin: spend credits; refill every ready tenant
        # when all of them are spent.  Weight w ⇒ w grants per cycle.
        candidates = [name for name in ready if self._credits[name] > 0]
        if not candidates:
            for name in ready:
                self._credits[name] = self._weights[name]
            candidates = ready
        order = {name: index for index, name in enumerate(self._ring)}
        choice = max(
            candidates, key=lambda name: (self._credits[name], -order[name])
        )
        self._credits[choice] -= 1
        return choice

    async def _dispatch(self) -> None:
        while True:
            name = self._next_tenant()
            if name is None:
                if self._closed and not self._inflight and not self.pending:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._semaphore.acquire()
            command, future, enqueued_at = self._queues[name].popleft()
            self._busy.add(name)
            self._inflight += 1
            self._space.set()
            self._loop.create_task(
                self._run(name, command, future, enqueued_at)
            )

    async def _run(self, name, command, future, enqueued_at) -> None:
        started = time.perf_counter()
        if self.metrics is not None:
            self.metrics.record_start(
                name, started - enqueued_at, len(self._queues[name])
            )
        failed = False
        try:
            result = await self._loop.run_in_executor(
                None, self._execute, name, command
            )
        except BaseException as error:  # noqa: BLE001 - forwarded to caller
            failed = True
            if not future.cancelled():
                future.set_exception(error)
        else:
            if not future.cancelled():
                future.set_result(result)
        finally:
            self._semaphore.release()
            self._busy.discard(name)
            self._inflight -= 1
            if self.metrics is not None:
                self.metrics.record_done(
                    name,
                    command.get("op", "?"),
                    time.perf_counter() - started,
                    failed=failed,
                )
            if not self._inflight and not self.pending:
                self._idle.set()
            self._wakeup.set()

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every queued and in-flight command has finished."""
        if self._loop is None:
            return
        self._bind_loop()
        await self._idle.wait()

    async def aclose(self, *, drain: bool = True) -> None:
        """Stop accepting work; by default finish what was admitted.

        ``drain=False`` cancels *queued* commands (their submitters see
        ``CancelledError``) but still waits out in-flight ones — a
        command running in an executor thread cannot be interrupted.
        """
        if self._loop is None:
            self._closed = True
            return
        self._bind_loop()
        if drain:
            await self.drain()
        self._closed = True
        if not drain:
            for queue in self._queues.values():
                while queue:
                    _, future, _ = queue.popleft()
                    future.cancel()
            self._space.set()
            if not self._inflight:
                self._idle.set()
            await self._idle.wait()
        self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
