"""Named tenant sessions sharing one service's resources.

A *tenant* is one reconciliation or crowd session — its own RNG
streams, feedback state, and (optionally) durability directory — that
the service multiplexes alongside the others.  The registry is the
name → tenant map plus the durability bookkeeping each tenant needs
(transaction counts for the checkpoint cadence).
"""

from __future__ import annotations

import pathlib
import threading
from typing import Optional

__all__ = ["SessionRegistry", "Tenant"]


class Tenant:
    """One registered session and its service-side bookkeeping."""

    __slots__ = (
        "name",
        "session",
        "kind",
        "weight",
        "checkpoint_dir",
        "checkpoint_every",
        "transactions",
    )

    def __init__(
        self,
        name: str,
        session,
        kind: str,
        weight: int,
        checkpoint_dir: Optional[pathlib.Path],
        checkpoint_every: int,
    ):
        self.name = name
        self.session = session
        self.kind = kind
        self.weight = weight
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.transactions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tenant({self.name!r}, {self.kind}, weight={self.weight})"


class SessionRegistry:
    """Thread-safe name → :class:`Tenant` map."""

    def __init__(self):
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        session,
        *,
        weight: int = 1,
        checkpoint_dir: "str | pathlib.Path | None" = None,
        checkpoint_every: int = 1,
    ) -> Tenant:
        """Admit a session under ``name``; names are unique while live.

        The kind is inferred from the session surface (crowd sessions
        run *rounds*, expert sessions run *steps*) — re-registering a
        recovered session after a crash uses the same entry point.
        """
        if weight < 1:
            raise ValueError("tenant weight must be positive")
        kind = "crowd" if hasattr(session, "round") else "expert"
        directory = (
            pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        tenant = Tenant(
            name, session, kind, weight, directory, checkpoint_every
        )
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} is already registered")
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise KeyError(f"no tenant named {name!r}") from None

    def remove(self, name: str) -> Tenant:
        """Evict a tenant (e.g. after a crash, before re-admission)."""
        with self._lock:
            try:
                return self._tenants.pop(name)
            except KeyError:
                raise KeyError(f"no tenant named {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)
