"""A 2-SAT-style implication graph over candidate literals.

Every candidate *i* yields two literals — "i accepted" and "i rejected" —
and the pairwise structure of a constraint network translates into
implications between them:

* a pairwise exclusion {x, y} gives  x → ¬y  and  y → ¬x;
* a dependency a → b gives  a → b  and its contrapositive  ¬b → ¬a;
* an approved/disapproved fact pins a literal:  ¬x → x  (resp.  x → ¬x).

Strongly connected components then expose global structure: a candidate
whose two literals share an SCC makes the network unsatisfiable (a ∧ ¬a),
and "accepting a forces rejecting a" reachability proves a candidate dead
with an explanation *chain* — the paths the linter renders in its
diagnostics.  Violations of size ≥ 3 are not pairwise and are handled by
the linter's exact set-based rules instead; the graph is the explanation
and conflict-structure side of the analysis, not its only oracle.

Tarjan's algorithm is implemented iteratively — declaration-time linting
must not hit the recursion limit on thousand-candidate networks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.constraints import ConstraintEngine, mask_indices


def true_literal(index: int) -> int:
    """The literal "candidate ``index`` is accepted"."""
    return 2 * index


def false_literal(index: int) -> int:
    """The literal "candidate ``index`` is rejected"."""
    return 2 * index + 1


def negate(literal: int) -> int:
    return literal ^ 1


def literal_index(literal: int) -> int:
    """The candidate a literal speaks about."""
    return literal >> 1


def literal_is_true(literal: int) -> bool:
    """Whether the literal asserts acceptance."""
    return literal % 2 == 0


class ImplicationGraph:
    """Directed graph over the 2·n candidate literals."""

    def __init__(self, n_candidates: int):
        self.n = n_candidates
        self._succ: list[list[int]] = [[] for _ in range(2 * n_candidates)]

    # -- construction ------------------------------------------------------
    def add_edge(self, source: int, target: int) -> None:
        """One directed implication between literals (no contrapositive)."""
        self._succ[source].append(target)

    def add_exclusion(self, x: int, y: int) -> None:
        """Pairwise exclusion {x, y}: accepting either rejects the other."""
        self.add_edge(true_literal(x), false_literal(y))
        self.add_edge(true_literal(y), false_literal(x))

    def add_dependency(self, antecedent: int, consequent: int) -> None:
        """a → b with its contrapositive ¬b → ¬a."""
        self.add_edge(true_literal(antecedent), true_literal(consequent))
        self.add_edge(false_literal(consequent), false_literal(antecedent))

    def add_fact(self, index: int, value: bool) -> None:
        """Pin a candidate: the opposing literal implies the asserted one."""
        if value:
            self.add_edge(false_literal(index), true_literal(index))
        else:
            self.add_edge(true_literal(index), false_literal(index))

    @classmethod
    def from_engine(
        cls,
        engine: ConstraintEngine,
        dependencies: Iterable[tuple[int, int]] = (),
        approved_mask: int = 0,
        disapproved_mask: int = 0,
    ) -> "ImplicationGraph":
        """Build the graph from an engine's *pairwise* violations.

        Size-≥3 violations have no pairwise encoding and are skipped; the
        linter covers them with its exact set rules.  ``dependencies`` are
        (antecedent, consequent) index pairs; the feedback masks pin
        literals as facts.
        """
        graph = cls(engine.n)
        for vmask in engine.violation_masks:
            if vmask.bit_count() == 2:
                x, y = mask_indices(vmask)
                graph.add_exclusion(x, y)
        for antecedent, consequent in dependencies:
            graph.add_dependency(antecedent, consequent)
        for index in mask_indices(approved_mask):
            graph.add_fact(index, True)
        for index in mask_indices(disapproved_mask):
            graph.add_fact(index, False)
        return graph

    # -- strongly connected components --------------------------------------
    def sccs(self) -> list[list[int]]:
        """Tarjan SCCs (iterative), in reverse topological order."""
        n_literals = 2 * self.n
        index = [0] * n_literals
        low = [0] * n_literals
        on_stack = [False] * n_literals
        visited = [False] * n_literals
        stack: list[int] = []
        components: list[list[int]] = []
        counter = 1
        for root in range(n_literals):
            if visited[root]:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, child_slot = work[-1]
                if child_slot == 0:
                    visited[node] = True
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                successors = self._succ[node]
                while child_slot < len(successors):
                    successor = successors[child_slot]
                    child_slot += 1
                    if not visited[successor]:
                        work[-1] = (node, child_slot)
                        work.append((successor, 0))
                        advanced = True
                        break
                    if on_stack[successor]:
                        low[node] = min(low[node], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def condensation(self) -> tuple[list[int], list[set[int]]]:
        """Component id per literal plus the condensed DAG's edge sets.

        Component ids follow the reverse-topological SCC order (an edge
        always points from a higher id to a lower one).
        """
        components = self.sccs()
        component_of = [0] * (2 * self.n)
        for component_id, members in enumerate(components):
            for literal in members:
                component_of[literal] = component_id
        edges: list[set[int]] = [set() for _ in components]
        for source in range(2 * self.n):
            source_component = component_of[source]
            for target in self._succ[source]:
                target_component = component_of[target]
                if target_component != source_component:
                    edges[source_component].add(target_component)
        return component_of, edges

    def contradictions(self) -> list[int]:
        """Candidates whose two literals share an SCC (a ∧ ¬a)."""
        component_of, _ = self.condensation()
        return [
            index
            for index in range(self.n)
            if component_of[true_literal(index)]
            == component_of[false_literal(index)]
        ]

    # -- reachability & propagation ------------------------------------------
    def implies(self, source: int, target: int) -> bool:
        """Whether asserting ``source`` transitively forces ``target``."""
        return self.implication_chain(source, target) is not None

    def implication_chain(
        self, source: int, target: int
    ) -> Optional[list[int]]:
        """A literal path ``source → … → target``, or None (BFS, shortest)."""
        if source == target:
            return [source]
        parent: dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for successor in self._succ[node]:
                    if successor in parent:
                        continue
                    parent[successor] = node
                    if successor == target:
                        chain = [target]
                        while chain[-1] != source:
                            chain.append(parent[chain[-1]])
                        chain.reverse()
                        return chain
                    next_frontier.append(successor)
            frontier = next_frontier
        return None

    def propagate(
        self, facts: Sequence[tuple[int, bool]]
    ) -> tuple[Optional[dict[int, bool]], list[int]]:
        """Unit propagation from pinned candidates.

        Asserts each fact's literal and closes under the implication
        edges.  Returns the forced partial assignment (candidate → value)
        or ``None`` on contradiction, along with the candidates at which
        contradictions surfaced.
        """
        assignment: dict[int, bool] = {}
        conflicts: list[int] = []
        queue: list[int] = []
        for index, value in facts:
            queue.append(true_literal(index) if value else false_literal(index))
        seen: set[int] = set()
        while queue:
            literal = queue.pop()
            if literal in seen:
                continue
            seen.add(literal)
            index, value = literal_index(literal), literal_is_true(literal)
            known = assignment.get(index)
            if known is not None and known != value:
                conflicts.append(index)
                continue
            assignment[index] = value
            queue.extend(self._succ[literal])
        if conflicts:
            return None, sorted(set(conflicts))
        return assignment, []

    def describe_chain(
        self, chain: Sequence[int], names: Sequence[str]
    ) -> str:
        """Render a literal path with candidate names: ``+a ⇒ -b ⇒ …``."""
        rendered = []
        for literal in chain:
            sign = "+" if literal_is_true(literal) else "-"
            rendered.append(f"{sign}{names[literal_index(literal)]}")
        return " => ".join(rendered)
