"""Static analysis over constraint networks.

A declarative, typed constraint schema (scoped one-to-one/cycle rules,
named mutual exclusions, dependencies) that compiles down to the existing
:class:`~repro.core.constraints.ConstraintEngine` masks, plus a
:class:`NetworkLinter` that proves — before any sampling — which
candidates are statically dead or forced, whether the network is
satisfiable at all, and which declarations conflict, duplicate or subsume
each other.  Findings carry stable ``RCxxx`` codes (see
:mod:`repro.analysis.diagnostics`).

Quick tour::

    from repro.analysis import (
        ConstraintSet, DependencyDeclaration, OneToOneDeclaration,
        declare_network, lint,
    )

    rules = ConstraintSet([
        OneToOneDeclaration(),
        DependencyDeclaration(("SA.price", "SB.amount"),
                              ("SA.currency", "SB.unit")),
    ])
    network = declare_network(schemas, candidates, rules)  # lints, fail-fast
    report = lint(network, feedback)                       # re-check later
"""

from .diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from .implication import ImplicationGraph
from .linter import NetworkLinter, declare_network, lint, prune_dead_candidates
from .schema import (
    CompiledConstraints,
    ConstraintSet,
    CorrespondenceRef,
    CycleDeclaration,
    Declaration,
    DependencyConstraint,
    DependencyDeclaration,
    MutexDeclaration,
    OneToOneDeclaration,
    as_ref,
    compile_dependencies,
    ref_index,
)
from .scopes import SCOPE_KINDS, ConstraintScope, ScopedConstraint

__all__ = [
    "DIAGNOSTIC_CODES",
    "SCOPE_KINDS",
    "CompiledConstraints",
    "ConstraintScope",
    "ConstraintSet",
    "CorrespondenceRef",
    "CycleDeclaration",
    "Declaration",
    "DependencyConstraint",
    "DependencyDeclaration",
    "Diagnostic",
    "ImplicationGraph",
    "LintError",
    "LintReport",
    "MutexDeclaration",
    "NetworkLinter",
    "OneToOneDeclaration",
    "ScopedConstraint",
    "Severity",
    "as_ref",
    "compile_dependencies",
    "declare_network",
    "lint",
    "prune_dead_candidates",
    "ref_index",
]
