"""Constraint scopes: where in the network a declaration applies.

Integrity rules rarely hold network-wide — a one-to-one discipline may be
sacred between two curated schemas yet meaningless against a scraped one.
A :class:`ConstraintScope` names the region a declaration governs
(network-wide, a set of schema pairs, or a set of attributes), and
:class:`ScopedConstraint` adapts any structural :class:`Constraint` to
enumerate violations only among the candidates its scope covers.

Scoping composes with the compiled engine for free: the wrapped constraint
still emits ordinary minimal violations, so the bitmask index space and the
CSR wave tables are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..core.constraints import Constraint, Violation
from ..core.correspondence import Correspondence
from ..core.graphs import InteractionGraph

#: the recognised scope kinds
SCOPE_KINDS = ("network", "schema-pair", "attribute-set")


@dataclass(frozen=True)
class ConstraintScope:
    """The region of a network one declaration governs.

    ``kind`` is one of :data:`SCOPE_KINDS`; ``values`` holds the scope's
    identity — sorted schema-name pairs for ``schema-pair``, qualified
    attribute names (``"Schema.attribute"``) for ``attribute-set``, empty
    for ``network``.
    """

    kind: str = "network"
    values: frozenset = frozenset()

    def __post_init__(self):
        if self.kind not in SCOPE_KINDS:
            raise ValueError(
                f"unknown scope kind {self.kind!r}; expected one of {SCOPE_KINDS}"
            )
        if self.kind == "network" and self.values:
            raise ValueError("a network-wide scope carries no values")
        if self.kind != "network" and not self.values:
            raise ValueError(f"a {self.kind} scope needs at least one value")

    # -- constructors ---------------------------------------------------
    @classmethod
    def network(cls) -> "ConstraintScope":
        """The whole network (the default scope)."""
        return cls()

    @classmethod
    def schema_pairs(cls, *pairs: tuple[str, str]) -> "ConstraintScope":
        """Only candidates between the given schema pairs (unordered)."""
        return cls(
            kind="schema-pair",
            values=frozenset(tuple(sorted(pair)) for pair in pairs),
        )

    @classmethod
    def attributes(cls, *qualified_names: str) -> "ConstraintScope":
        """Only candidates touching one of the given qualified attributes."""
        return cls(kind="attribute-set", values=frozenset(qualified_names))

    # -- predicates ------------------------------------------------------
    def covers(self, corr: Correspondence) -> bool:
        """Whether a candidate correspondence falls inside this scope."""
        if self.kind == "network":
            return True
        if self.kind == "schema-pair":
            return corr.schema_pair in self.values
        return any(
            attribute.qualified_name in self.values
            for attribute in corr.attributes
        )

    def covers_pair(self, left: str, right: str) -> bool:
        """Whether the scope concerns the (unordered) schema pair."""
        if self.kind == "network":
            return True
        if self.kind == "schema-pair":
            return tuple(sorted((left, right))) in self.values
        return any(
            name.split(".", 1)[0] in (left, right) for name in self.values
        )

    def covers_attribute(self, qualified_name: str) -> bool:
        """Whether the scope concerns the qualified attribute."""
        if self.kind == "network":
            return True
        if self.kind == "attribute-set":
            return qualified_name in self.values
        schema = qualified_name.split(".", 1)[0]
        return any(schema in pair for pair in self.values)

    def select(
        self, correspondences: Iterable[Correspondence]
    ) -> tuple[Correspondence, ...]:
        """The covered subset of ``correspondences`` (order preserved)."""
        if self.kind == "network":
            return tuple(correspondences)
        return tuple(corr for corr in correspondences if self.covers(corr))

    def describe(self) -> str:
        if self.kind == "network":
            return "network-wide"
        if self.kind == "schema-pair":
            pairs = ", ".join("~".join(pair) for pair in sorted(self.values))
            return f"schema pairs {{{pairs}}}"
        return f"attributes {{{', '.join(sorted(self.values))}}}"


class ScopedConstraint(Constraint):
    """A structural constraint restricted to the candidates of a scope.

    Violations are enumerated over the covered subset only, so a scoped
    one-to-one behaves exactly like :class:`OneToOneConstraint` compiled
    against the covered candidates — the parity the analysis tests pin.
    """

    def __init__(self, base: Constraint, scope: ConstraintScope):
        if isinstance(base, ScopedConstraint):
            raise TypeError("scopes do not nest; scope the base constraint")
        self.base = base
        self.scope = scope
        self.name = f"{base.name}[{scope.describe()}]"

    def minimal_violations(
        self,
        correspondences: Sequence[Correspondence],
        graph: InteractionGraph,
    ) -> Iterator[Violation]:
        covered = self.scope.select(correspondences)
        if not covered:
            return
        for violation in self.base.minimal_violations(covered, graph):
            yield Violation(self.name, violation.correspondences)

    def referenced_correspondences(self) -> Optional[frozenset[Correspondence]]:
        return self.base.referenced_correspondences()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScopedConstraint({self.base!r}, {self.scope.describe()})"
