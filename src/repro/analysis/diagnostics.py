"""Structured lint diagnostics with stable codes.

Every finding of the static analyser is a :class:`Diagnostic` carrying a
stable ``RCxxx`` code (so tooling can filter and suppress by code across
releases), a severity, the offending constraints/correspondences, and a
human-readable explanation.  A lint run returns a :class:`LintReport`
bundling the diagnostics with the network-level verdicts (dead / forced
candidates, satisfiability).

Code registry
-------------
======  ========  =====================================================
code    severity  meaning
======  ========  =====================================================
RC001   error     network unsatisfiable (no violation-free instance)
RC002   warning   dead candidate (in no violation-free instance)
RC003   info      forced candidate (in every violation-free instance)
RC004   error     conflicting constraints (dependency consequent
                  excluded whenever its antecedent is accepted)
RC005   warning   duplicate constraint registration
RC006   warning   subsumed constraint (every violation contains a
                  strictly smaller violation of another constraint)
RC007   error     feedback contradicts the compiled constraints
RC008   error     declaration references an unknown correspondence
RC009   warning   degenerate declaration (self-dependency, collapsed
                  exclusion group)
RC010   info      scoped declaration covers no candidate
======  ========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..core.constraints import Constraint
from ..core.correspondence import Correspondence


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


#: stable code → (severity, short slug); the single source of truth that
#: keeps severities consistent across the linter's emission sites.
DIAGNOSTIC_CODES: Mapping[str, tuple[Severity, str]] = {
    "RC001": (Severity.ERROR, "unsatisfiable-network"),
    "RC002": (Severity.WARNING, "dead-candidate"),
    "RC003": (Severity.INFO, "forced-candidate"),
    "RC004": (Severity.ERROR, "conflicting-constraints"),
    "RC005": (Severity.WARNING, "duplicate-constraint"),
    "RC006": (Severity.WARNING, "subsumed-constraint"),
    "RC007": (Severity.ERROR, "feedback-contradiction"),
    "RC008": (Severity.ERROR, "unknown-reference"),
    "RC009": (Severity.WARNING, "degenerate-declaration"),
    "RC010": (Severity.INFO, "empty-scope"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One structured lint finding."""

    code: str
    severity: Severity
    slug: str
    message: str
    #: the constraints (or declarations' compiled forms) at fault, if any
    constraints: tuple[Constraint, ...] = ()
    #: the candidate correspondences concerned, if any
    correspondences: tuple[Correspondence, ...] = ()

    @classmethod
    def of(
        cls,
        code: str,
        message: str,
        constraints: Sequence[Constraint] = (),
        correspondences: Sequence[Correspondence] = (),
    ) -> "Diagnostic":
        """Build a diagnostic, deriving severity and slug from the code."""
        try:
            severity, slug = DIAGNOSTIC_CODES[code]
        except KeyError:
            raise ValueError(f"unknown diagnostic code {code!r}") from None
        return cls(
            code=code,
            severity=severity,
            slug=slug,
            message=message,
            constraints=tuple(constraints),
            correspondences=tuple(correspondences),
        )

    def render(self) -> str:
        """``RC002 warning dead-candidate: …`` one-liner."""
        return f"{self.code} {self.severity} {self.slug}: {self.message}"


class LintError(ValueError):
    """Raised by fail-fast callers when a lint run produced errors."""

    def __init__(self, report: "LintReport"):
        self.report = report
        lines = [diag.render() for diag in report.errors()]
        super().__init__(
            "constraint network failed static analysis:\n"
            + "\n".join(f"  {line}" for line in lines)
        )


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run over a network (+ optional feedback).

    ``dead``/``forced`` are exact: a candidate is dead iff it appears in
    *no* matching instance of the network under the given feedback, forced
    iff it appears in *every* one.  ``satisfiable`` is False iff the
    network admits no matching instance at all (only possible when
    approved feedback is itself inconsistent), in which case ``dead`` and
    ``forced`` are empty by convention.
    """

    diagnostics: tuple[Diagnostic, ...]
    dead: frozenset[Correspondence]
    forced: frozenset[Correspondence]
    satisfiable: bool
    candidates: int
    violations: int

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def at_least(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at_least(Severity.ERROR)

    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity == Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/infos allowed)."""
        return not self.errors()

    def counts(self) -> dict[str, int]:
        """Finding counts per code, in code order."""
        out: dict[str, int] = {}
        for diag in self.diagnostics:
            out[diag.code] = out.get(diag.code, 0) + 1
        return dict(sorted(out.items()))

    def raise_on_error(self) -> "LintReport":
        """Fail-fast: raise :class:`LintError` if any error was found."""
        if not self.ok:
            raise LintError(self)
        return self

    def to_text(self) -> str:
        """Human-readable multi-line summary."""
        header = (
            f"lint: {self.candidates} candidates, {self.violations} compiled "
            f"violations, satisfiable={self.satisfiable}, "
            f"{len(self.dead)} dead, {len(self.forced)} forced"
        )
        if not self.diagnostics:
            return header + "\nno findings"
        lines = [header]
        for diag in sorted(
            self.diagnostics, key=lambda d: (-d.severity, d.code)
        ):
            lines.append(diag.render())
        return "\n".join(lines)
