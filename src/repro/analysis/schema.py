"""The declarative, typed constraint schema.

Integrity rules arrive as *data* (external corpora, tenant configuration),
not as Python subclasses.  This module gives them a typed surface:

* :class:`CorrespondenceRef` — a correspondence named by its qualified
  endpoint attributes (``"SA.productionDate" ~ "SB.date"``), resolvable
  against any candidate universe;
* declarations — :class:`OneToOneDeclaration` / :class:`CycleDeclaration`
  (structural, optionally scoped), :class:`MutexDeclaration` (named
  exclusion groups) and :class:`DependencyDeclaration` ("if candidate *a*
  is accepted then *b* must be");
* :class:`ConstraintSet` — an ordered collection with per-schema-pair /
  per-attribute / network-wide lookup, whose :meth:`ConstraintSet.compile`
  lowers every declaration to ordinary :class:`~repro.core.constraints.
  Constraint` objects.  The existing :class:`ConstraintEngine` masks and
  CSR wave tables consume those unchanged — the kernels never learn that
  the constraints were declared rather than hard-coded.

Dependency lowering
-------------------
The engine's compiled semantics is anti-monotone: a selection is
consistent iff it contains no minimal violating subset.  A dependency
a→b is *not* anti-monotone, but over **maximal** instances it reduces to
one: if a is accepted and b is absent, maximality means some violation
v ∋ b has v∖{b} selected — so a co-occurring with v∖{b} is itself a
forbidden set.  :func:`compile_dependencies` therefore rewrites every
violation through every dependency's consequent, iterating to a fixpoint
(derived sets can feed other dependencies), skipping any derived set that
a smaller known violation subsumes.  A derived *singleton* {a} proves the
antecedent statically dead — the declaration conflicts with the rest of
the network (diagnostic RC004).
"""

from __future__ import annotations

import abc
from typing import ClassVar, Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..core.constraints import (
    Constraint,
    CycleConstraint,
    MutualExclusionConstraint,
    OneToOneConstraint,
    Violation,
)
from ..core.correspondence import Correspondence
from ..core.graphs import InteractionGraph
from .diagnostics import Diagnostic, LintError, LintReport, Severity
from .scopes import ConstraintScope, ScopedConstraint


class CorrespondenceRef:
    """A candidate correspondence named by qualified attribute names.

    Order-insensitive, like :class:`Correspondence` itself: the two
    endpoint names are stored sorted.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: str, right: str):
        for name in (left, right):
            if "." not in name:
                raise ValueError(
                    f"endpoint {name!r} is not qualified ('Schema.attribute')"
                )
        if left == right:
            raise ValueError("a correspondence connects two distinct attributes")
        self.left, self.right = sorted((left, right))

    @classmethod
    def of(cls, corr: Correspondence) -> "CorrespondenceRef":
        left, right = (a.qualified_name for a in corr.attributes)
        return cls(left, right)

    @property
    def key(self) -> tuple[str, str]:
        return (self.left, self.right)

    def resolve(
        self, index: Mapping[tuple[str, str], Correspondence]
    ) -> Optional[Correspondence]:
        return index.get(self.key)

    def describe(self) -> str:
        return f"{self.left}~{self.right}"

    def __eq__(self, other) -> bool:
        return isinstance(other, CorrespondenceRef) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorrespondenceRef({self.left!r}, {self.right!r})"


RefLike = Union[CorrespondenceRef, Correspondence, tuple]


def as_ref(value: RefLike) -> CorrespondenceRef:
    """Coerce a correspondence / name pair / ref into a ref."""
    if isinstance(value, CorrespondenceRef):
        return value
    if isinstance(value, Correspondence):
        return CorrespondenceRef.of(value)
    if isinstance(value, tuple) and len(value) == 2:
        return CorrespondenceRef(*value)
    raise TypeError(f"cannot interpret {value!r} as a correspondence reference")


def ref_index(
    correspondences: Iterable[Correspondence],
) -> dict[tuple[str, str], Correspondence]:
    """Lookup table from qualified-name pairs to candidates."""
    return {CorrespondenceRef.of(corr).key: corr for corr in correspondences}


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------
class Declaration(abc.ABC):
    """One typed, declarative integrity rule."""

    kind: ClassVar[str] = "declaration"
    label: str
    scope: ConstraintScope

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-liner for diagnostics."""

    def references(self) -> tuple[CorrespondenceRef, ...]:
        """The correspondences the declaration names explicitly."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class OneToOneDeclaration(Declaration):
    """Every attribute matches at most once, within the scope."""

    kind = "one-to-one"

    def __init__(
        self, scope: Optional[ConstraintScope] = None, label: str = ""
    ):
        self.scope = scope or ConstraintScope.network()
        self.label = label or f"one-to-one[{self.scope.describe()}]"

    def describe(self) -> str:
        return self.label


class CycleDeclaration(Declaration):
    """Correspondences along schema cycles must compose, within the scope."""

    kind = "cycle"

    def __init__(
        self,
        max_cycle_length: int = 3,
        scope: Optional[ConstraintScope] = None,
        label: str = "",
    ):
        self.max_cycle_length = max_cycle_length
        self.scope = scope or ConstraintScope.network()
        self.label = label or f"cycle[{self.scope.describe()}]"

    def describe(self) -> str:
        return self.label


class MutexDeclaration(Declaration):
    """Named groups of mutually exclusive correspondences."""

    kind = "mutual-exclusion"

    def __init__(self, groups: Sequence[Iterable[RefLike]], label: str = ""):
        compiled: list[tuple[CorrespondenceRef, ...]] = []
        for group in groups:
            members = tuple(as_ref(member) for member in group)
            if not members:
                raise ValueError("an exclusion group cannot be empty")
            compiled.append(members)
        if not compiled:
            raise ValueError("a mutex declaration needs at least one group")
        self.groups: tuple[tuple[CorrespondenceRef, ...], ...] = tuple(compiled)
        self.label = label or f"mutex[{len(self.groups)} group(s)]"

    @property
    def scope(self) -> ConstraintScope:  # type: ignore[override]
        names = {
            endpoint
            for group in self.groups
            for ref in group
            for endpoint in ref.key
        }
        return ConstraintScope.attributes(*names)

    def references(self) -> tuple[CorrespondenceRef, ...]:
        seen: dict[CorrespondenceRef, None] = {}
        for group in self.groups:
            for ref in group:
                seen.setdefault(ref)
        return tuple(seen)

    def describe(self) -> str:
        return self.label


class DependencyDeclaration(Declaration):
    """"If *antecedent* is accepted then *consequent* must be" (a → b)."""

    kind = "dependency"

    def __init__(
        self, antecedent: RefLike, consequent: RefLike, label: str = ""
    ):
        self.antecedent = as_ref(antecedent)
        self.consequent = as_ref(consequent)
        self.label = label or (
            f"{self.antecedent.describe()} => {self.consequent.describe()}"
        )

    @property
    def scope(self) -> ConstraintScope:  # type: ignore[override]
        names = set(self.antecedent.key) | set(self.consequent.key)
        return ConstraintScope.attributes(*names)

    def references(self) -> tuple[CorrespondenceRef, ...]:
        if self.antecedent == self.consequent:
            return (self.antecedent,)
        return (self.antecedent, self.consequent)

    def describe(self) -> str:
        return self.label


# ---------------------------------------------------------------------------
# The engine-level dependency constraint
# ---------------------------------------------------------------------------
class DependencyConstraint(Constraint):
    """Compiled form of a dependency a → b: the derived forbidden sets.

    Each stored set is {a} ∪ (v∖{b}) for some (possibly itself derived)
    violation v ∋ b — exactly the selections in which a is accepted while
    b is permanently blocked.  Replayed like a mutual exclusion, so the
    engine's mask compilation is oblivious to the dependency semantics.
    """

    name = "dependency"

    def __init__(
        self,
        antecedent: Correspondence,
        consequent: Correspondence,
        violations: Iterable[frozenset[Correspondence]] = (),
        label: str = "",
    ):
        self.antecedent = antecedent
        self.consequent = consequent
        self.derived: tuple[frozenset[Correspondence], ...] = tuple(violations)
        if label:
            self.name = label

    def minimal_violations(
        self,
        correspondences: Sequence[Correspondence],
        graph: InteractionGraph,
    ) -> Iterator[Violation]:
        available = set(correspondences)
        for members in self.derived:
            if members <= available:
                yield Violation(self.name, members)

    def referenced_correspondences(self) -> frozenset[Correspondence]:
        referenced = {self.antecedent, self.consequent}
        for members in self.derived:
            referenced |= members
        return frozenset(referenced)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DependencyConstraint({self.antecedent!r} => {self.consequent!r}, "
            f"{len(self.derived)} derived violations)"
        )


def compile_dependencies(
    dependencies: Sequence[tuple[Correspondence, Correspondence]],
    base_violations: Iterable[frozenset[Correspondence]],
    max_derived: int = 100_000,
) -> tuple[list[set[frozenset[Correspondence]]], set[int]]:
    """Derive every dependency's forbidden sets against the base violations.

    Returns one derived-set family per dependency (aligned with the input)
    plus the indices of dependencies proven *conflicting*: their antecedent
    alone is a forbidden set, i.e. accepting it simultaneously requires and
    forbids the consequent (diagnostic RC004).

    The rewrite iterates to a fixpoint because a derived set can contain
    another dependency's consequent.  Derived sets subsumed by a smaller
    known violation are skipped — any selection containing the superset
    already contains the subset, so dropping it changes no verdict — which
    also bounds the closure; ``max_derived`` is a safety valve against
    pathological declaration families.
    """
    all_violations: set[frozenset[Correspondence]] = set(base_violations)
    budget = len(all_violations) + max_derived
    derived: list[set[frozenset[Correspondence]]] = [set() for _ in dependencies]
    conflicting: set[int] = set()
    changed = True
    while changed:
        changed = False
        for position, (antecedent, consequent) in enumerate(dependencies):
            for violation in list(all_violations):
                if consequent not in violation:
                    continue
                rewritten = (violation - {consequent}) | {antecedent}
                if len(rewritten) == 1:
                    # {antecedent} forbidden outright — even when an equal
                    # or smaller set is already known, the *dependency* is
                    # what proves this antecedent dead.
                    conflicting.add(position)
                if any(known <= rewritten for known in all_violations):
                    continue
                all_violations.add(rewritten)
                derived[position].add(rewritten)
                changed = True
                if len(all_violations) > budget:
                    raise RuntimeError(
                        "dependency compilation exceeded the derived-"
                        f"violation budget ({max_derived}); the declaration "
                        "family is pathologically entangled"
                    )
    return derived, conflicting


# ---------------------------------------------------------------------------
# The declaration collection
# ---------------------------------------------------------------------------
class CompiledConstraints:
    """Result of :meth:`ConstraintSet.compile`: engine-ready constraints
    plus the declaration-time diagnostics."""

    def __init__(
        self,
        constraints: Sequence[Constraint],
        diagnostics: Sequence[Diagnostic],
        candidates: int,
    ):
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)
        self._candidates = candidates

    @property
    def dependencies(self) -> tuple[DependencyConstraint, ...]:
        return tuple(
            c for c in self.constraints if isinstance(c, DependencyConstraint)
        )

    def report(self) -> LintReport:
        """The declaration diagnostics as a (verdict-less) lint report."""
        return LintReport(
            diagnostics=self.diagnostics,
            dead=frozenset(),
            forced=frozenset(),
            satisfiable=True,
            candidates=self._candidates,
            violations=0,
        )

    def raise_on_error(self) -> "CompiledConstraints":
        if any(d.severity >= Severity.ERROR for d in self.diagnostics):
            raise LintError(self.report())
        return self


class ConstraintSet:
    """An ordered, queryable collection of constraint declarations.

    The lookup methods answer "which rules govern this schema pair /
    attribute?" — network-wide declarations are included in every answer,
    mirroring how economy-wide rules participate in sector lookups.
    """

    def __init__(self, declarations: Iterable[Declaration] = (), name: str = ""):
        self._declarations: list[Declaration] = []
        self.name = name or "constraint-set"
        for declaration in declarations:
            self.add(declaration)

    def add(self, declaration: Declaration) -> "ConstraintSet":
        if not isinstance(declaration, Declaration):
            raise TypeError(f"not a declaration: {declaration!r}")
        self._declarations.append(declaration)
        return self

    @property
    def declarations(self) -> tuple[Declaration, ...]:
        return tuple(self._declarations)

    def __len__(self) -> int:
        return len(self._declarations)

    def __iter__(self) -> Iterator[Declaration]:
        return iter(self._declarations)

    # -- lookups ---------------------------------------------------------
    def by_kind(self, kind: str) -> tuple[Declaration, ...]:
        return tuple(d for d in self._declarations if d.kind == kind)

    def network_wide(self) -> tuple[Declaration, ...]:
        return tuple(
            d for d in self._declarations if d.scope.kind == "network"
        )

    def for_schema_pair(self, left: str, right: str) -> tuple[Declaration, ...]:
        """Declarations governing candidates between two schemas."""
        return tuple(
            d for d in self._declarations if d.scope.covers_pair(left, right)
        )

    def for_attribute(self, qualified_name: str) -> tuple[Declaration, ...]:
        """Declarations governing candidates touching an attribute."""
        return tuple(
            d
            for d in self._declarations
            if d.scope.covers_attribute(qualified_name)
        )

    # -- compilation -----------------------------------------------------
    def compile(
        self,
        correspondences: Sequence[Correspondence],
        graph: InteractionGraph,
        strict: bool = False,
    ) -> CompiledConstraints:
        """Lower every declaration to engine-ready constraints.

        Emits declaration-time diagnostics (RC004 conflicting dependency,
        RC008 unknown reference, RC009 degenerate declaration, RC010 empty
        scope); with ``strict`` any error-severity finding raises
        :class:`LintError` immediately.
        """
        index = ref_index(correspondences)
        diagnostics: list[Diagnostic] = []
        structural: list[Constraint] = []
        dependency_requests: list[
            tuple[DependencyDeclaration, Correspondence, Correspondence]
        ] = []

        for declaration in self._declarations:
            missing = [
                ref
                for ref in declaration.references()
                if ref.resolve(index) is None
            ]
            if missing:
                names = ", ".join(ref.describe() for ref in missing)
                diagnostics.append(
                    Diagnostic.of(
                        "RC008",
                        f"declaration {declaration.describe()!r} references "
                        f"unknown correspondence(s): {names}",
                    )
                )
            if isinstance(declaration, (OneToOneDeclaration, CycleDeclaration)):
                base: Constraint = (
                    OneToOneConstraint()
                    if isinstance(declaration, OneToOneDeclaration)
                    else CycleConstraint(declaration.max_cycle_length)
                )
                scope = declaration.scope
                if scope.kind == "network":
                    structural.append(base)
                    continue
                if not scope.select(correspondences):
                    diagnostics.append(
                        Diagnostic.of(
                            "RC010",
                            f"declaration {declaration.describe()!r} covers "
                            "no candidate correspondence",
                        )
                    )
                structural.append(ScopedConstraint(base, scope))
            elif isinstance(declaration, MutexDeclaration):
                groups: list[frozenset[Correspondence]] = []
                for group in declaration.groups:
                    resolved = [ref.resolve(index) for ref in group]
                    if any(corr is None for corr in resolved):
                        # An unenforceable group is dropped wholesale (the
                        # RC008 above covers it); compiling the resolvable
                        # remainder would enforce a *stronger* exclusion
                        # than declared.
                        continue
                    members = frozenset(resolved)
                    if len(members) < 2:
                        diagnostics.append(
                            Diagnostic.of(
                                "RC009",
                                f"exclusion group of {declaration.describe()!r} "
                                "collapses to fewer than two distinct "
                                "candidates and is dropped",
                                correspondences=tuple(members),
                            )
                        )
                        continue
                    groups.append(members)
                if groups:
                    constraint = MutualExclusionConstraint(
                        sorted(groups, key=sorted)
                    )
                    constraint.name = declaration.label
                    structural.append(constraint)
            elif isinstance(declaration, DependencyDeclaration):
                if declaration.antecedent == declaration.consequent:
                    diagnostics.append(
                        Diagnostic.of(
                            "RC009",
                            f"dependency {declaration.describe()!r} depends "
                            "on itself and is vacuous",
                        )
                    )
                    continue
                antecedent = declaration.antecedent.resolve(index)
                consequent = declaration.consequent.resolve(index)
                if antecedent is None or consequent is None:
                    continue  # RC008 already reported above
                dependency_requests.append(
                    (declaration, antecedent, consequent)
                )
            else:  # pragma: no cover - future declaration kinds
                raise TypeError(f"cannot compile declaration {declaration!r}")

        base_violations: set[frozenset[Correspondence]] = set()
        for constraint in structural:
            for violation in constraint.minimal_violations(
                tuple(correspondences), graph
            ):
                base_violations.add(violation.correspondences)

        derived, conflicting = compile_dependencies(
            [(a, b) for _, a, b in dependency_requests], base_violations
        )
        compiled: list[Constraint] = list(structural)
        for position, (declaration, antecedent, consequent) in enumerate(
            dependency_requests
        ):
            constraint = DependencyConstraint(
                antecedent,
                consequent,
                sorted(derived[position], key=sorted),
                label=declaration.label,
            )
            compiled.append(constraint)
            if position in conflicting:
                diagnostics.append(
                    Diagnostic.of(
                        "RC004",
                        f"dependency {declaration.describe()!r} conflicts "
                        "with the network's other constraints: accepting "
                        f"{declaration.antecedent.describe()} both requires "
                        f"and forbids {declaration.consequent.describe()}, "
                        "so the antecedent is statically dead",
                        constraints=(constraint,),
                        correspondences=(antecedent,),
                    )
                )

        result = CompiledConstraints(
            compiled, diagnostics, candidates=len(correspondences)
        )
        if strict:
            result.raise_on_error()
        return result
