"""The network linter: declaration-time static analysis.

Runs before any sampling and answers, exactly, three questions about a
compiled constraint network under (optional) feedback ⟨F⁺, F⁻⟩:

* **satisfiable** — does any matching instance exist?  With the engine's
  anti-monotone semantics any consistent F⁺-respecting selection extends
  greedily to a maximal instance, so the network is unsatisfiable iff F⁺
  itself contains a compiled violation.
* **dead** — candidates contained in *no* instance: members of F⁻, plus
  any c with a violation v ∋ c whose remainder v∖{c} is fully approved
  (with empty feedback: exactly the singleton violations).
* **forced** — candidates contained in *every* instance: members of F⁺,
  plus any live c all of whose violations are unrealisable — each one
  either touches F⁻ or has a remainder inconsistent with F⁺ (maximality
  then forces c in).

These local rules are sound *and complete* (the extension lemma above),
which is what the property tests pin against brute-force
:func:`~repro.core.instances.enumerate_instances`.  On top of the exact
verdicts, the linter reports structural hygiene — duplicate and subsumed
constraints straight from the engine's compile records, conflicting
dependencies via derived singletons and implication-graph reachability,
and feedback that contradicts declared dependencies — as stable-coded
:class:`~repro.analysis.diagnostics.Diagnostic` findings.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.constraints import mask_indices
from ..core.correspondence import CandidateSet, Correspondence
from ..core.feedback import Feedback
from ..core.graphs import InteractionGraph, complete_graph
from ..core.network import MatchingNetwork
from ..core.schema import Schema
from .diagnostics import Diagnostic, LintReport
from .implication import ImplicationGraph, false_literal, true_literal
from .schema import ConstraintSet, DependencyConstraint


class NetworkLinter:
    """One lint run over a network (plus optional feedback/declarations).

    ``constraint_set`` adds declaration-level findings (unknown
    references, degenerate declarations, empty scopes) by re-running the
    declaration compile against the network's candidate universe; the
    verdicts themselves always come from the network's *compiled*
    constraints.
    """

    def __init__(
        self,
        network: MatchingNetwork,
        feedback: Optional[Feedback] = None,
        constraint_set: Optional[ConstraintSet] = None,
    ):
        self.network = network
        self.feedback = feedback
        self.constraint_set = constraint_set

    def run(self) -> LintReport:
        engine = self.network.engine
        diagnostics: list[Diagnostic] = []
        approved_mask = disapproved_mask = 0
        if self.feedback is not None:
            approved_mask = engine.mask_of(self.feedback.approved)
            disapproved_mask = engine.mask_of(self.feedback.disapproved)

        if self.constraint_set is not None:
            compiled = self.constraint_set.compile(
                self.network.correspondences, self.network.graph
            )
            # RC004 re-surfaces below from the compiled dependency
            # constraints themselves; merging it here would double-report.
            diagnostics.extend(
                d for d in compiled.diagnostics if d.code != "RC004"
            )

        diagnostics.extend(self._duplicate_and_subsumed(engine))

        dependencies = [
            constraint
            for constraint in self.network.constraints
            if isinstance(constraint, DependencyConstraint)
        ]
        dependency_pairs = [
            (engine.index_of[d.antecedent], engine.index_of[d.consequent])
            for d in dependencies
            if d.antecedent in engine.index_of
            and d.consequent in engine.index_of
        ]
        graph = ImplicationGraph.from_engine(engine, dependency_pairs)
        names = [str(corr) for corr in engine.correspondences]
        diagnostics.extend(
            self._conflicting_dependencies(engine, dependencies, graph, names)
        )

        if not engine.mask_is_consistent(approved_mask):
            diagnostics.extend(
                self._unsatisfiable(engine, approved_mask)
            )
            return LintReport(
                diagnostics=tuple(diagnostics),
                dead=frozenset(),
                forced=frozenset(),
                satisfiable=False,
                candidates=engine.n,
                violations=len(engine.violations),
            )

        dead_mask = self._dead_mask(engine, approved_mask, disapproved_mask)
        forced_mask = self._forced_mask(
            engine, approved_mask, disapproved_mask, dead_mask
        )
        diagnostics.extend(
            self._dead_diagnostics(
                engine, dead_mask, approved_mask, disapproved_mask, graph, names
            )
        )
        diagnostics.extend(
            self._forced_diagnostics(engine, forced_mask, approved_mask)
        )
        diagnostics.extend(
            self._dependency_feedback_contradictions(
                engine, dependencies, forced_mask, dead_mask
            )
        )
        return LintReport(
            diagnostics=tuple(diagnostics),
            dead=engine.corrs_of(dead_mask),
            forced=engine.corrs_of(forced_mask),
            satisfiable=True,
            candidates=engine.n,
            violations=len(engine.violations),
        )

    # ------------------------------------------------------------------
    # Exact verdicts
    # ------------------------------------------------------------------
    @staticmethod
    def _dead_mask(engine, approved_mask: int, disapproved_mask: int) -> int:
        """F⁻ plus every candidate whose addition to F⁺ trips a violation."""
        dead = disapproved_mask
        blocked = engine.blocked_candidates(approved_mask)
        for index in blocked.nonzero()[0]:
            dead |= engine.bits[index]
        return dead

    @staticmethod
    def _forced_mask(
        engine, approved_mask: int, disapproved_mask: int, dead_mask: int
    ) -> int:
        """F⁺ plus every live candidate none of whose violations can fire.

        A violation v ∋ c is *realisable* when its remainder v∖{c} avoids
        F⁻ and is jointly consistent with F⁺ — some instance then contains
        the remainder and must exclude c.  If no violation is realisable,
        maximality pulls c into every instance.
        """
        forced = approved_mask
        for index in range(engine.n):
            bit = engine.bits[index]
            if bit & (approved_mask | dead_mask):
                continue
            realisable = False
            for vmask in engine.violation_masks_involving(index):
                others = vmask & ~bit
                if others & disapproved_mask:
                    continue
                grown = approved_mask
                feasible = True
                remaining = others & ~grown
                while remaining:
                    member = remaining & -remaining
                    remaining ^= member
                    if not engine.mask_can_add(grown, member.bit_length() - 1):
                        feasible = False
                        break
                    grown |= member
                if feasible:
                    realisable = True
                    break
            if not realisable:
                forced |= bit
        return forced

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _duplicate_and_subsumed(self, engine) -> list[Diagnostic]:
        """RC005 (duplicate registrations) and RC006 (subsumed constraints)."""
        out: list[Diagnostic] = []
        overlap: dict[tuple[int, ...], int] = {}
        for sources in engine.violation_sources:
            if len(sources) > 1:
                key = tuple(sorted(set(sources)))
                overlap[key] = overlap.get(key, 0) + 1
        for contributors, count in sorted(overlap.items()):
            involved = tuple(engine.constraints[i] for i in contributors)
            names = ", ".join(dict.fromkeys(c.name for c in involved))
            out.append(
                Diagnostic.of(
                    "RC005",
                    f"{count} identical violation(s) registered more than "
                    f"once by: {names}; the duplicates add nothing",
                    constraints=involved,
                )
            )

        vmasks = engine.violation_masks
        by_candidate: list[list[int]] = [[] for _ in range(engine.n)]
        for position, vmask in enumerate(vmasks):
            for index in mask_indices(vmask):
                by_candidate[index].append(position)
        subsumed: set[int] = set()
        for position, vmask in enumerate(vmasks):
            for index in mask_indices(vmask):
                done = False
                for other in by_candidate[index]:
                    other_mask = vmasks[other]
                    if other_mask != vmask and other_mask & vmask == other_mask:
                        subsumed.add(position)
                        done = True
                        break
                if done:
                    break
        if subsumed:
            fully_subsumed: dict[int, int] = {}
            for constraint_index in range(len(engine.constraints)):
                owned = [
                    position
                    for position, sources in enumerate(engine.violation_sources)
                    if constraint_index in sources
                ]
                if owned and all(position in subsumed for position in owned):
                    fully_subsumed[constraint_index] = len(owned)
            for constraint_index, count in fully_subsumed.items():
                constraint = engine.constraints[constraint_index]
                out.append(
                    Diagnostic.of(
                        "RC006",
                        f"constraint {constraint.name!r} is subsumed: each of "
                        f"its {count} violation(s) contains a strictly "
                        "smaller violation of another constraint, so it "
                        "never changes a verdict",
                        constraints=(constraint,),
                    )
                )
        return out

    def _conflicting_dependencies(
        self,
        engine,
        dependencies: Sequence[DependencyConstraint],
        graph: ImplicationGraph,
        names: Sequence[str],
    ) -> list[Diagnostic]:
        """RC004: accepting the antecedent transitively forbids it."""
        out: list[Diagnostic] = []
        for dependency in dependencies:
            antecedent_index = engine.index_of.get(dependency.antecedent)
            if antecedent_index is None:
                continue
            singleton = frozenset((dependency.antecedent,))
            explanation = None
            if singleton in dependency.derived:
                explanation = (
                    "its derived violations forbid the antecedent outright"
                )
            else:
                chain = graph.implication_chain(
                    true_literal(antecedent_index),
                    false_literal(antecedent_index),
                )
                if chain is not None:
                    explanation = (
                        "implication chain "
                        + graph.describe_chain(chain, names)
                    )
            if explanation is not None:
                out.append(
                    Diagnostic.of(
                        "RC004",
                        f"dependency {dependency.name!r} conflicts with the "
                        "network's other constraints: accepting "
                        f"{names[antecedent_index]} both requires and "
                        f"forbids its consequent ({explanation}); the "
                        "antecedent is statically dead",
                        constraints=(dependency,),
                        correspondences=(dependency.antecedent,),
                    )
                )
        return out

    def _unsatisfiable(self, engine, approved_mask: int) -> list[Diagnostic]:
        """RC001 (+RC007 per approved culprit): F⁺ violates the network."""
        out: list[Diagnostic] = []
        violating = engine.mask_violations_within(approved_mask)
        witnesses = [engine.violations[i] for i in violating[:3]]
        rendered = "; ".join(
            "{" + ", ".join(sorted(str(c) for c in v.correspondences)) + "}"
            + f" ({v.constraint})"
            for v in witnesses
        )
        out.append(
            Diagnostic.of(
                "RC001",
                "the network is unsatisfiable: the approved feedback "
                f"contains {len(violating)} compiled violation(s), e.g. "
                f"{rendered}",
                correspondences=tuple(
                    corr for v in witnesses for corr in sorted(
                        v.correspondences, key=str
                    )
                ),
            )
        )
        for violation_index in violating:
            violation = engine.violations[violation_index]
            for corr in sorted(violation.correspondences, key=str):
                out.append(
                    Diagnostic.of(
                        "RC007",
                        f"approved correspondence {corr} participates in the "
                        f"fully-approved violation of {violation.constraint!r}",
                        correspondences=(corr,),
                    )
                )
        return out

    def _dead_diagnostics(
        self,
        engine,
        dead_mask: int,
        approved_mask: int,
        disapproved_mask: int,
        graph: ImplicationGraph,
        names: Sequence[str],
    ) -> list[Diagnostic]:
        """RC002 for candidates dead *beyond* the explicit F⁻ members."""
        out: list[Diagnostic] = []
        undeclared = dead_mask & ~disapproved_mask
        for index in mask_indices(undeclared):
            bit = engine.bits[index]
            witness = None
            for vmask in engine.violation_masks_involving(index):
                if not (vmask & ~bit & ~approved_mask):
                    witness = vmask
                    break
            detail = ""
            if witness is not None:
                members = ", ".join(
                    sorted(names[i] for i in mask_indices(witness))
                )
                if witness == bit:
                    detail = f" (it alone forms the violation {{{members}}})"
                else:
                    detail = (
                        f" (the rest of the violation {{{members}}} is "
                        "already approved)"
                    )
            out.append(
                Diagnostic.of(
                    "RC002",
                    f"candidate {names[index]} is dead: no violation-free "
                    f"instance can contain it{detail}",
                    correspondences=(engine.correspondences[index],),
                )
            )
        return out

    def _forced_diagnostics(
        self, engine, forced_mask: int, approved_mask: int
    ) -> list[Diagnostic]:
        """RC003 for candidates forced *beyond* the explicit F⁺ members."""
        out: list[Diagnostic] = []
        undeclared = forced_mask & ~approved_mask
        for index in mask_indices(undeclared):
            out.append(
                Diagnostic.of(
                    "RC003",
                    f"candidate {engine.correspondences[index]} is forced: "
                    "every violation it participates in is unrealisable, so "
                    "maximality includes it in every instance",
                    correspondences=(engine.correspondences[index],),
                )
            )
        return out

    def _dependency_feedback_contradictions(
        self,
        engine,
        dependencies: Sequence[DependencyConstraint],
        forced_mask: int,
        dead_mask: int,
    ) -> list[Diagnostic]:
        """RC007: a dependency whose antecedent is certain but whose
        consequent can never appear.

        The compiled (anti-monotone) form cannot express "F⁻ ∋ b forbids
        a", so this semantic contradiction surfaces as a diagnostic rather
        than a violation.
        """
        out: list[Diagnostic] = []
        for dependency in dependencies:
            antecedent = engine.index_of.get(dependency.antecedent)
            consequent = engine.index_of.get(dependency.consequent)
            if antecedent is None or consequent is None:
                continue
            if (forced_mask >> antecedent) & 1 and (dead_mask >> consequent) & 1:
                out.append(
                    Diagnostic.of(
                        "RC007",
                        f"dependency {dependency.name!r} is contradicted: "
                        f"its antecedent {dependency.antecedent} appears in "
                        "every instance while its consequent "
                        f"{dependency.consequent} appears in none",
                        constraints=(dependency,),
                        correspondences=(
                            dependency.antecedent,
                            dependency.consequent,
                        ),
                    )
                )
        return out


def lint(
    network: MatchingNetwork,
    feedback: Optional[Feedback] = None,
    constraint_set: Optional[ConstraintSet] = None,
) -> LintReport:
    """Statically analyse a constraint network (see :class:`NetworkLinter`)."""
    return NetworkLinter(network, feedback, constraint_set).run()


def prune_dead_candidates(
    network: MatchingNetwork,
    feedback: Optional[Feedback] = None,
) -> tuple[MatchingNetwork, LintReport]:
    """Drop statically-dead candidates before sampling.

    Dead candidates appear in no matching instance, so removing them
    preserves the instance space Ω exactly — sampled frequencies and
    uncertainty are untouched while every kernel iterates a smaller index
    space.  Explicit F⁻ members are kept (feedback keeps referring to
    them); only constraint-dead candidates are dropped.  When nothing is
    dead the original network object is returned unchanged, so downstream
    traces are bit-identical.  An unsatisfiable network raises
    :class:`~repro.analysis.diagnostics.LintError`.
    """
    report = lint(network, feedback)
    if not report.satisfiable:
        report.raise_on_error()
    disapproved = (
        feedback.disapproved if feedback is not None else frozenset()
    )
    droppable = report.dead - disapproved
    if not droppable:
        return network, report
    keep = [
        corr for corr in network.correspondences if corr not in droppable
    ]
    return network.restricted_to(keep), report


def declare_network(
    schemas: Sequence[Schema],
    candidates: CandidateSet | Iterable[Correspondence],
    constraint_set: ConstraintSet,
    graph: Optional[InteractionGraph] = None,
    validate: bool = True,
    strict: bool = True,
) -> MatchingNetwork:
    """Build a :class:`MatchingNetwork` from declared constraints.

    Declarations are compiled against the candidate universe (``strict``
    raises on declaration errors such as unknown references); with
    ``validate`` the finished network is linted and error findings raise
    :class:`~repro.analysis.diagnostics.LintError` before any sampling
    can run against a broken network.
    """
    if not isinstance(candidates, CandidateSet):
        candidates = CandidateSet(candidates)
    graph = graph or complete_graph([schema.name for schema in schemas])
    compiled = constraint_set.compile(
        candidates.correspondences, graph, strict=strict
    )
    network = MatchingNetwork(
        schemas,
        candidates,
        graph=graph,
        constraints=compiled.constraints,
        validate=False,  # compile already vetted the references
    )
    if validate:
        report = lint(network, constraint_set=constraint_set)
        report.raise_on_error()
    return network
