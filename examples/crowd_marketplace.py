#!/usr/bin/env python
"""Scenario: run reconciliation as a crowdsourcing marketplace.

An integration team has a fixed budget and two ways to spend it: one
trusted professional at 4 units per answer, or a marketplace of twelve
workers of wildly mixed reliability at 1 unit per answer, asked in batched
rounds of four questions with every question answered by three workers and
the votes aggregated with learned reliability weights.

This walkthrough reconciles a business-partner network both ways at the
same total spend, then opens up the crowd machinery: the per-round trace,
the budget ledger, and the per-worker report the platform operator sees
(answers given, estimated vs. true accuracy).

Run with::

    python examples/crowd_marketplace.py
"""

import random

from repro import (
    BudgetLedger,
    CrowdSession,
    InformationGainSelection,
    MatchingNetwork,
    ProbabilisticNetwork,
    ReconciliationSession,
    ReliabilityAwareAssignment,
    WeightedVote,
    WorkerPool,
)
from repro.core import NoisyOracle
from repro.datasets import business_partner
from repro.matchers import coma_like
from repro.metrics import f_measure

EXPERT_COST = 4.0  # one professional answer = four marketplace answers
EXPERT_ERROR = 0.1
BUDGET = 180.0


def main() -> None:
    corpus = business_partner(scale=0.5, seed=13)
    candidates = coma_like().match_network(corpus.schemas)
    network = MatchingNetwork(corpus.schemas, candidates)
    truth = corpus.ground_truth()
    print(
        f"{len(candidates)} candidates, {network.violation_count()} "
        f"violations, budget {BUDGET:g} units\n"
    )

    # --- Channel 1: the professional -----------------------------------
    pnet = ProbabilisticNetwork(network, target_samples=150, rng=random.Random(7))
    expert = ReconciliationSession(
        pnet,
        NoisyOracle(truth, EXPERT_ERROR, rng=random.Random(100)),
        InformationGainSelection(rng=random.Random(8)),
        on_conflict="disapprove",
    )
    expert.run(budget=int(BUDGET // EXPERT_COST))
    print(
        f"professional  ({EXPERT_COST:g}/answer, err={EXPERT_ERROR:.0%}): "
        f"{len(expert.trace.steps)} questions, "
        f"H {expert.trace.initial_uncertainty:.1f} → {expert.uncertainty():.1f}"
    )

    # --- Channel 2: the marketplace crowd ------------------------------
    pool = WorkerPool.from_distribution(truth, 12, "mixed", seed=42)
    pnet = ProbabilisticNetwork(network, target_samples=150, rng=random.Random(7))
    crowd = CrowdSession(
        pnet,
        pool,
        k=4,
        redundancy=3,
        assignment=ReliabilityAwareAssignment(rng=random.Random(8)),
        aggregator=WeightedVote(),
        ledger=BudgetLedger(cost_per_answer=1.0, budget=BUDGET),
    )
    trace = crowd.run()
    print(
        f"crowd         (1/answer, 12 workers err "
        f"{min(pool.error_rates):.0%}–{max(pool.error_rates):.0%}): "
        f"{trace.questions_asked} questions in {len(trace.rounds)} rounds, "
        f"H {trace.initial_uncertainty:.1f} → {trace.final_uncertainty:.1f}"
    )

    # --- What the money bought ------------------------------------------
    expert_matching = expert.current_matching(iterations=120, rng=random.Random(9))
    crowd_matching = crowd.current_matching(iterations=120, rng=random.Random(9))
    print(
        f"\ninstantiated matching F1: professional "
        f"{f_measure(expert_matching, truth):.2f}, "
        f"crowd {f_measure(crowd_matching, truth):.2f}"
    )

    # --- The operator's view --------------------------------------------
    print("\nround trace (spend → uncertainty):")
    for record in trace.rounds[:6]:
        flags = " (truncated)" if record.truncated else ""
        print(
            f"  round {record.index:>2}: {len(record.questions)} questions, "
            f"spend {record.spent:6.1f}, H {record.uncertainty:8.2f}{flags}"
        )
    if len(trace.rounds) > 6:
        print(f"  … {len(trace.rounds) - 6} more rounds")

    print("\nper-worker report (top 6 by answers):")
    report = sorted(
        crowd.per_worker_report().items(),
        key=lambda item: -item[1]["answers"],
    )
    print(f"  {'worker':<8}{'answers':>8}{'est.acc':>9}{'true acc':>10}")
    for worker_id, row in report[:6]:
        print(
            f"  {worker_id:<8}{row['answers']:>8}"
            f"{row['estimated_accuracy']:>9.2f}{row['true_accuracy']:>10.2f}"
        )

    print(
        "\nAt equal spend the redundant crowd asks more questions than the "
        "professional can afford, and reliability-weighted voting keeps its "
        "effective error low — the pay-as-you-go premise at marketplace "
        "prices."
    )


if __name__ == "__main__":
    main()
