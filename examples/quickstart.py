#!/usr/bin/env python
"""Quickstart: reconcile the paper's motivating example (Figure 1).

Three video-content providers expose date-like attributes; an automatic
matcher produced five candidate correspondences, two of which violate the
network constraints.  We build the probabilistic matching network, let a
simulated expert assert the most informative correspondences, and extract a
trusted matching.

Run with::

    python examples/quickstart.py
"""

import random

from repro import (
    InformationGainSelection,
    MatchingNetwork,
    Oracle,
    ProbabilisticNetwork,
    ReconciliationSession,
    Schema,
    correspondence,
    enumerate_instances,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The three provider schemas of the paper's Figure 1.
    # ------------------------------------------------------------------
    eoveri = Schema.from_names("EoverI", ["productionDate"])
    bbc = Schema.from_names("BBC", ["date"])
    dvdizzy = Schema.from_names("DVDizzy", ["releaseDate", "screenDate"])

    production = eoveri.attribute("productionDate")
    date = bbc.attribute("date")
    release = dvdizzy.attribute("releaseDate")
    screen = dvdizzy.attribute("screenDate")

    # The candidate correspondences an automatic matcher produced.
    candidates = {
        "c1": correspondence(production, date),
        "c2": correspondence(production, release),
        "c3": correspondence(date, release),
        "c4": correspondence(production, screen),
        "c5": correspondence(date, screen),
    }

    # ------------------------------------------------------------------
    # 2. The matching network: one-to-one + cycle constraints by default.
    # ------------------------------------------------------------------
    network = MatchingNetwork(
        [eoveri, bbc, dvdizzy], list(candidates.values())
    )
    print(f"candidate correspondences : {len(network.candidates)}")
    print(f"constraint violations     : {network.violation_count()}")
    for violation in network.engine.violations:
        members = ", ".join(sorted(str(c) for c in violation))
        print(f"  [{violation.constraint}] {{{members}}}")

    print("\nmatching instances (maximal consistent subsets):")
    for instance in enumerate_instances(network):
        print("  {", ", ".join(sorted(str(c) for c in instance)), "}")

    # ------------------------------------------------------------------
    # 3. Probabilities + guided reconciliation.
    # ------------------------------------------------------------------
    pnet = ProbabilisticNetwork(
        network, target_samples=100, rng=random.Random(7)
    )
    print("\ninitial probabilities:")
    for corr, probability in sorted(
        pnet.probabilities().items(), key=lambda kv: str(kv[0])
    ):
        print(f"  p({corr}) = {probability:.2f}")

    # The "expert" knows the true matching {c1, c2, c3}.
    oracle = Oracle([candidates["c1"], candidates["c2"], candidates["c3"]])
    session = ReconciliationSession(
        pnet, oracle, InformationGainSelection(rng=random.Random(3))
    )
    session.run(uncertainty_goal=0.0)

    print("\nexpert assertions (information-gain order):")
    for step in session.trace.steps:
        verdict = "approve" if step.approved else "reject"
        print(
            f"  {step.index}. {verdict:8s} {step.correspondence}"
            f"   → uncertainty {step.uncertainty:.2f}"
        )

    # ------------------------------------------------------------------
    # 4. Instantiate the trusted matching.
    # ------------------------------------------------------------------
    matching = session.current_matching(rng=random.Random(1))
    print("\ntrusted matching:")
    for corr in sorted(matching, key=str):
        print(f"  {corr}")
    print(
        f"\nreconciled with {len(session.trace.steps)} assertions "
        f"instead of {len(network.candidates)}"
    )


if __name__ == "__main__":
    main()
