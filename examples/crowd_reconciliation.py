#!/usr/bin/env python
"""Scenario: reconciliation with an unreliable crowd instead of one expert.

The paper assumes a single infallible expert; its discussion points to
crowdsourced settings as the natural extension.  This example reconciles a
business-partner network three ways — perfect expert, one noisy worker,
and a majority vote over five noisy workers — and compares the quality of
the resulting matchings.  Majority voting recovers most of the lost
accuracy at 5× the (cheap) answer cost.

Run with::

    python examples/crowd_reconciliation.py
"""

import random

from repro import (
    InformationGainSelection,
    MatchingNetwork,
    ProbabilisticNetwork,
    ReconciliationSession,
)
from repro.core import MajorityOracle, NoisyOracle, Oracle
from repro.datasets import business_partner
from repro.matchers import coma_like
from repro.metrics import f_measure, precision, recall


def reconcile_with(network, oracle, truth, seed, budget):
    pnet = ProbabilisticNetwork(
        network, target_samples=150, rng=random.Random(seed)
    )
    # Imperfect experts can approve correspondences that contradict earlier
    # approvals under the constraints; "disapprove" trusts the constraints
    # over the answer instead of aborting.
    session = ReconciliationSession(
        pnet,
        oracle,
        InformationGainSelection(rng=random.Random(seed + 1)),
        on_conflict="disapprove",
    )
    session.run(budget=budget)
    matching = session.current_matching(iterations=120, rng=random.Random(seed + 2))
    return matching


def main() -> None:
    corpus = business_partner(scale=0.5, seed=13)
    candidates = coma_like().match_network(corpus.schemas)
    network = MatchingNetwork(corpus.schemas, candidates)
    truth = corpus.ground_truth()
    budget = round(0.3 * len(candidates))
    print(
        f"{len(candidates)} candidates, {network.violation_count()} violations, "
        f"budget {budget} assertions\n"
    )

    error_rate = 0.2
    experts = [
        ("perfect expert", Oracle(truth)),
        (
            f"one worker (err={error_rate:.0%})",
            NoisyOracle(truth, error_rate, rng=random.Random(100)),
        ),
        (
            f"majority of 5 workers (err={error_rate:.0%} each)",
            MajorityOracle(
                [
                    NoisyOracle(truth, error_rate, rng=random.Random(200 + i))
                    for i in range(5)
                ]
            ),
        ),
    ]

    print(f"{'expert model':<38s} precision  recall  f1")
    for label, oracle in experts:
        matching = reconcile_with(network, oracle, truth, seed=7, budget=budget)
        print(
            f"{label:<38s} {precision(matching, truth):>9.2f}  "
            f"{recall(matching, truth):>6.2f}  {f_measure(matching, truth):.2f}"
        )

    print(
        "\nA single noisy worker corrupts the matching; majority voting over "
        "a small crowd restores most of the perfect-expert quality."
    )


if __name__ == "__main__":
    main()
