#!/usr/bin/env python
"""Scenario: onboarding suppliers onto a purchase-order exchange.

A B2B exchange already interlinks several supplier PO schemas.  When a new
supplier joins, only the *new* schema pairs need matching and the existing
reconciled knowledge is kept: approved/disapproved correspondences carry
over as feedback, and only the fresh uncertainty must be paid for.  This
exercises incremental network growth — the collaborative-integration story
the paper motivates.

Run with::

    python examples/purchase_order_exchange.py
"""

import random

from repro import (
    Feedback,
    InformationGainSelection,
    MatchingNetwork,
    ProbabilisticNetwork,
    ReconciliationSession,
)
from repro.datasets import generate_corpus
from repro.datasets.vocabulary import purchase_order_vocabulary
from repro.matchers import coma_like
from repro.metrics import f_measure


def reconcile(network, oracle, carried_feedback, seed, budget):
    """Reconcile a network, seeding the session with carried feedback."""
    pnet = ProbabilisticNetwork(network, target_samples=150, rng=random.Random(seed))
    for corr in carried_feedback.approved:
        if corr in network.candidates:
            pnet.record_assertion(corr, approved=True)
    for corr in carried_feedback.disapproved:
        if corr in network.candidates:
            pnet.record_assertion(corr, approved=False)
    session = ReconciliationSession(
        pnet, oracle, InformationGainSelection(rng=random.Random(seed + 1))
    )
    session.run(budget=budget)
    return session


def main() -> None:
    # A controlled PO landscape: five supplier schemas over a vocabulary
    # with a handful of line-item blocks (the full 40-block vocabulary of
    # the paper-scale corpus makes this demo needlessly heavy).
    corpus = generate_corpus(
        name="PO",
        vocabulary=purchase_order_vocabulary(line_items=4),
        n_schemas=5,
        min_attributes=25,
        max_attributes=45,
        seed=77,
    )
    schemas = list(corpus.schemas)
    established, newcomer = schemas[:-1], schemas[-1]
    pipeline = coma_like()

    # ------------------------------------------------------------------
    # 1. The established exchange: match and reconcile.
    # ------------------------------------------------------------------
    base_candidates = pipeline.match_network(established)
    base_network = MatchingNetwork(established, base_candidates)
    truth_base = corpus.ground_truth(base_network.graph)
    print(
        f"established exchange: {len(established)} schemas, "
        f"{len(base_candidates)} candidates, "
        f"{base_network.violation_count()} violations"
    )

    base_budget = round(0.3 * len(base_candidates))
    base_session = reconcile(
        base_network, corpus.oracle(base_network.graph), Feedback(), 1, base_budget
    )
    base_matching = base_session.current_matching(iterations=120, rng=random.Random(2))
    print(
        f"after {base_budget} assertions: matching f1 = "
        f"{f_measure(base_matching, truth_base):.2f}"
    )

    # ------------------------------------------------------------------
    # 2. The newcomer joins: only new pairs are matched; old feedback
    #    carries over.
    # ------------------------------------------------------------------
    full_candidates = pipeline.match_network(schemas)
    full_network = MatchingNetwork(schemas, full_candidates)
    truth_full = corpus.ground_truth(full_network.graph)
    fresh = len(full_candidates) - len(
        [c for c in full_candidates if c in base_candidates]
    )
    print(
        f"\n{newcomer.name} joins: {fresh} new candidates "
        f"({len(full_candidates)} total), "
        f"{full_network.violation_count()} violations"
    )

    carried = base_session.pnet.feedback
    incremental_budget = round(0.3 * fresh)
    session = reconcile(
        full_network,
        corpus.oracle(full_network.graph),
        carried,
        seed=5,
        budget=incremental_budget,
    )
    matching = session.current_matching(iterations=120, rng=random.Random(6))
    print(
        f"carried over {len(carried)} assertions; "
        f"spent only {incremental_budget} new ones"
    )
    print(f"full-network matching f1 = {f_measure(matching, truth_full):.2f}")

    # Reference: reconciling from scratch with the same *total* budget.
    scratch_budget = len(carried) + incremental_budget
    scratch = reconcile(
        full_network,
        corpus.oracle(full_network.graph),
        Feedback(),
        seed=9,
        budget=scratch_budget,
    )
    scratch_matching = scratch.current_matching(iterations=120, rng=random.Random(10))
    print(
        f"from-scratch reference (same total budget {scratch_budget}): "
        f"f1 = {f_measure(scratch_matching, truth_full):.2f}"
    )
    print(
        "\nCarried feedback keeps its value when the network grows — "
        "reconciliation composes incrementally."
    )


if __name__ == "__main__":
    main()
