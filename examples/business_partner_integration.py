#!/usr/bin/env python
"""Scenario: consolidating business-partner master data across systems.

An enterprise runs three systems (CRM, ERP, billing) that each keep their
own business-partner schema.  We regenerate such a landscape with the BP
corpus generator, match every pair with the COMA-style pipeline, and then
compare three reconciliation budgets (0%, 10%, 25% expert effort) in terms
of the quality of the instantiated matching — the pay-as-you-go trade-off a
data-integration team actually faces.

Run with::

    python examples/business_partner_integration.py
"""

import random

from repro import (
    InformationGainSelection,
    MatchingNetwork,
    ProbabilisticNetwork,
    ReconciliationSession,
)
from repro.datasets import business_partner
from repro.matchers import coma_like
from repro.metrics import f_measure, precision, recall


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Generate the landscape and match it.
    # ------------------------------------------------------------------
    corpus = business_partner(scale=0.6, seed=42)
    print("schemas:")
    for schema in corpus.schemas:
        preview = ", ".join(a.name for a in list(schema)[:4])
        print(f"  {schema.name}: {len(schema)} attributes ({preview}, ...)")

    pipeline = coma_like()
    candidates = pipeline.match_network(corpus.schemas)
    network = MatchingNetwork(corpus.schemas, candidates)
    truth = corpus.ground_truth()

    print(f"\nmatcher output    : {len(candidates)} candidates")
    print(f"true matching     : {len(truth)} correspondences")
    print(f"violations        : {network.violation_count()}")
    print(
        f"candidate quality : precision {precision(candidates.correspondences, truth):.2f}, "
        f"recall {recall(candidates.correspondences, truth):.2f}"
    )

    # ------------------------------------------------------------------
    # 2. Pay-as-you-go: instantiate at increasing effort budgets.
    # ------------------------------------------------------------------
    pnet = ProbabilisticNetwork(network, target_samples=200, rng=random.Random(1))
    session = ReconciliationSession(
        pnet, corpus.oracle(), InformationGainSelection(rng=random.Random(2))
    )

    print("\neffort  assertions  uncertainty  precision  recall  f1")
    total = len(network.correspondences)
    for effort in (0.0, 0.10, 0.25):
        session.run(budget=round(effort * total))
        matching = session.current_matching(
            iterations=150, rng=random.Random(3)
        )
        print(
            f"{effort:>6.0%}  {len(session.trace.steps):>10d}  "
            f"{session.uncertainty():>11.1f}  "
            f"{precision(matching, truth):>9.2f}  "
            f"{recall(matching, truth):>6.2f}  "
            f"{f_measure(matching, truth):.2f}"
        )

    print(
        "\nThe matching is usable at every stage — more expert budget "
        "buys higher precision/recall, which is the pay-as-you-go contract."
    )


if __name__ == "__main__":
    main()
