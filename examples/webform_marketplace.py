#!/usr/bin/env python
"""Scenario: interconnecting web-form schemas in a data marketplace.

Dozens of auto-extracted web forms (the paper's WebForm dataset) must be
interlinked so queries can span providers.  A complete interaction graph is
too expensive to reconcile, so the marketplace matches each provider only
against a few hub providers (a sparse Erdős–Rényi topology), and routes the
limited expert budget with information gain.  We also compare the ordering
strategies head-to-head on the same network.

Run with::

    python examples/webform_marketplace.py
"""

import random

from repro import (
    EntropySelection,
    InformationGainSelection,
    MatchingNetwork,
    ProbabilisticNetwork,
    RandomSelection,
    ReconciliationSession,
    erdos_renyi_graph,
)
from repro.datasets import webform
from repro.matchers import amc_like
from repro.metrics import precision, recall


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Extracted web-form schemas on a sparse interaction graph.
    # ------------------------------------------------------------------
    corpus = webform(scale=0.3, seed=9)
    names = [schema.name for schema in corpus.schemas]
    graph = erdos_renyi_graph(names, 0.2, rng=random.Random(4))
    print(
        f"{len(names)} web-form schemas, {len(graph.edges)} matched pairs "
        f"(complete graph would need {len(names) * (len(names) - 1) // 2})"
    )

    # A permissive matcher configuration: over-generates candidates (and
    # hence constraint violations), which is where guided reconciliation
    # earns its keep.
    candidates = amc_like(threshold=0.45).match_network(corpus.schemas, graph)
    network = MatchingNetwork(corpus.schemas, candidates, graph=graph)
    truth = corpus.ground_truth(graph)
    print(
        f"{len(candidates)} candidates, {network.violation_count()} violations, "
        f"{len(truth)} true correspondences"
    )

    # ------------------------------------------------------------------
    # 2. Compare selection strategies under the same 20% budget.
    # ------------------------------------------------------------------
    budget = max(1, round(0.2 * len(candidates)))
    print(f"\nexpert budget: {budget} assertions (20% of candidates)\n")
    print("strategy           uncertainty-left  precision  recall")

    strategies = [
        ("random", RandomSelection(rng=random.Random(10))),
        ("entropy", EntropySelection(rng=random.Random(10))),
        ("information-gain", InformationGainSelection(rng=random.Random(10))),
    ]
    for label, strategy in strategies:
        pnet = ProbabilisticNetwork(
            network, target_samples=150, rng=random.Random(20)
        )
        session = ReconciliationSession(pnet, corpus.oracle(graph), strategy)
        initial = session.trace.initial_uncertainty or 1.0
        session.run(budget=budget)
        matching = session.current_matching(
            iterations=120, rng=random.Random(30)
        )
        print(
            f"{label:<18s} {session.uncertainty() / initial:>16.1%}  "
            f"{precision(matching, truth):>9.2f}  "
            f"{recall(matching, truth):>6.2f}"
        )

    print(
        "\nNetwork-aware ordering (information gain) squeezes the most "
        "certainty out of the same expert budget."
    )


if __name__ == "__main__":
    main()
